//! Message types between clients, workers and the master.
//!
//! The request/reply surface is **pure data** ([`Request`], [`Reply`]):
//! no channels, no callbacks — so the same messages can cross an
//! in-process channel or be framed onto a TCP socket by `spcache-net`
//! without translation. A transport pairs a [`Request`] with a reply
//! route; the in-process form is an [`Envelope`] carrying a one-shot
//! crossbeam sender.

use bytes::Bytes;
use crossbeam::channel::Sender;

/// Identifies one cached partition: `(file, partition index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartKey {
    /// File identifier.
    pub file: u64,
    /// Partition index within the file (0-based).
    pub part: u32,
}

impl PartKey {
    /// Convenience constructor.
    pub fn new(file: u64, part: u32) -> Self {
        PartKey { file, part }
    }

    /// The staged twin of this key (see [`STAGE_BIT`]).
    pub fn staged(self) -> PartKey {
        PartKey::new(self.file, self.part | STAGE_BIT)
    }

    /// The key of parity partition `idx` of `file` (see [`PARITY_BIT`]).
    pub fn parity(file: u64, idx: u32) -> PartKey {
        PartKey::new(file, idx | PARITY_BIT)
    }

    /// Whether this key addresses a parity partition.
    pub fn is_parity(self) -> bool {
        self.part & PARITY_BIT != 0
    }
}

/// Staged-key marker: partition indices with this bit set are invisible
/// to normal reads (clients only address indices < 2³¹). The online
/// adjuster and the repartitioner both build new layouts under staged
/// keys and commit them with a rename, so an executor failing mid-build
/// never corrupts the readable layout.
pub const STAGE_BIT: u32 = 1 << 31;

/// Parity-key marker: partition indices with this bit set hold Cauchy-RS
/// parity shards of the file (the integrity tier's hot-file redundancy).
/// Like staged keys they are invisible to normal data reads — clients
/// fetch them explicitly via [`Request::GetParity`] during
/// corruption-to-erasure recovery.
pub const PARITY_BIT: u32 = 1 << 30;

/// Errors surfaced to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The partition is not resident on the addressed worker.
    NotFound(PartKey),
    /// The worker is gone (channel closed / connection refused after the
    /// listener shut down).
    WorkerDown(usize),
    /// The master has no metadata for this file.
    UnknownFile(u64),
    /// A file with this id already exists.
    AlreadyExists(u64),
    /// The worker did not answer within the read deadline (hung or
    /// overloaded; the worker may still be alive).
    Timeout(usize),
    /// Transport-level I/O failure reaching endpoint `w` (connection
    /// refused or reset, broken pipe, a frame cut off mid-stream). The
    /// remote may be perfectly healthy — retrying after re-locating can
    /// succeed, so this is classified retryable.
    Io(usize),
    /// Wire-protocol violation (bad version byte, unknown opcode,
    /// malformed frame). Permanent: resending the same bytes would
    /// produce the same violation.
    Codec(String),
    /// An epoch-fenced request and the worker's registered epoch
    /// disagree: either the client stamped an epoch the worker has
    /// outlived (client metadata stale — refresh and retry) or the
    /// worker itself is a fenced zombie that must not serve. Retryable:
    /// refreshing the epoch table from the master resolves the
    /// client-side case, and the zombie case heals through recovery.
    StaleEpoch(usize),
    /// The partition's bytes failed checksum verification (worker-side
    /// on load/reload, or client-side on receive). The copy has been
    /// dropped — corruption is converted into an **erasure**, never into
    /// wrong bytes. Retryable: the reader falls back to parity decode
    /// (when the file carries parity partitions) or an under-store heal.
    Corrupt(PartKey),
    /// The file is degraded and its recovery is already in flight
    /// elsewhere (sweep or another client's lazy repair); the operation
    /// was shed under [`crate::config::DegradedPolicy::FastFail`].
    /// Not retryable *by the issuing client's inner loop* — callers
    /// decide whether to come back after the repair lands.
    Degraded(u64),
}

impl StoreError {
    /// Whether a retry (after re-locating and possibly recovering from
    /// the under-store) could succeed. Metadata errors and protocol
    /// violations are permanent; availability and transport-I/O errors
    /// (connection reset/refused) are retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StoreError::NotFound(_)
                | StoreError::WorkerDown(_)
                | StoreError::Timeout(_)
                | StoreError::Io(_)
                | StoreError::StaleEpoch(_)
                | StoreError::Corrupt(_)
        )
    }

    /// The worker/endpoint index this error implicates, if any.
    /// Endpoints at [`MASTER_ENDPOINT`] (or beyond the fleet) are
    /// reported but must not be fed into the worker health table.
    pub fn endpoint(&self) -> Option<usize> {
        match self {
            StoreError::WorkerDown(w)
            | StoreError::Timeout(w)
            | StoreError::Io(w)
            | StoreError::StaleEpoch(w) => Some(*w),
            _ => None,
        }
    }
}

/// Sentinel endpoint index used by transports for errors talking to the
/// master (which has no slot in the worker health table).
pub const MASTER_ENDPOINT: usize = usize::MAX;

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "partition {k:?} not found"),
            StoreError::WorkerDown(w) => write!(f, "worker {w} is down"),
            StoreError::UnknownFile(id) => write!(f, "unknown file {id}"),
            StoreError::AlreadyExists(id) => write!(f, "file {id} already exists"),
            StoreError::Timeout(w) => write!(f, "worker {w} timed out"),
            StoreError::Io(w) if *w == MASTER_ENDPOINT => {
                write!(f, "i/o failure reaching the master")
            }
            StoreError::Io(w) => write!(f, "i/o failure reaching worker {w}"),
            StoreError::Codec(msg) => write!(f, "wire protocol violation: {msg}"),
            StoreError::StaleEpoch(w) => write!(f, "stale epoch fencing worker {w}"),
            StoreError::Corrupt(k) => {
                write!(f, "partition {k:?} failed checksum verification")
            }
            StoreError::Degraded(id) => {
                write!(f, "file {id} is degraded with recovery in flight")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-worker service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Bytes served by `Get` requests.
    pub bytes_served: u64,
    /// Bytes accepted by `Put` requests.
    pub bytes_stored: u64,
    /// Number of `Get` requests handled.
    pub gets: u64,
    /// Number of `Put` requests handled.
    pub puts: u64,
    /// Partitions currently resident.
    pub resident_parts: usize,
    /// Bytes transferred under the background traffic class (recovery
    /// sweeps, repartition pushes, spill writebacks and refills) — the
    /// numerator of the §4.4 background-fraction bound.
    pub bytes_background: u64,
    /// Partitions evicted by the memory budget (spilled or dropped).
    pub evictions: u64,
    /// Bytes written back to the under-store's spill area on eviction.
    pub spilled_bytes: u64,
    /// Bytes reloaded from the spill area on reads of evicted partitions.
    pub reloaded_bytes: u64,
    /// Bytes currently resident in the partition map.
    pub resident_bytes: u64,
    /// Partitions whose bytes failed checksum verification and were
    /// dropped (corruption-to-erasure conversions).
    pub corruptions_detected: u64,
    /// Bytes currently resident under parity keys (Cauchy-RS shards of
    /// hot files — the integrity tier's redundancy footprint).
    pub parity_bytes: u64,
    /// Erased-as-corrupt partitions later re-admitted by a client's
    /// parity-decode read-repair push-back.
    pub decode_reconstructions: u64,
}

/// A request to a worker — pure data, identical over every transport.
///
/// `Stats`, `Ping` and `Shutdown` are control-plane: they bypass fault
/// injection and do not advance the worker's data-path op counter, so
/// monitoring traffic never perturbs a scripted fault sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Store a partition.
    Put {
        /// Partition key.
        key: PartKey,
        /// Partition bytes.
        data: Bytes,
        /// CRC-64 tree checksum of `data` (`spcache_integrity::sum`),
        /// or `0` when the writer did not checksum (the unverified
        /// sentinel — maintenance paths that re-split bytes, and the
        /// pre-integrity wire behaviour).
        sum: u64,
    },
    /// Fetch a partition.
    Get {
        /// Partition key.
        key: PartKey,
    },
    /// Fetch a **parity** partition (a [`PartKey::parity`] key) during
    /// corruption-to-erasure recovery. Kept distinct from `Get` on the
    /// wire so parity traffic is observable and ordinary reads can never
    /// address a parity slot by accident.
    GetParity {
        /// Parity partition key ([`PARITY_BIT`] set).
        key: PartKey,
    },
    /// Fetch a byte sub-range of a partition (the online-adjustment path:
    /// only the bytes that change servers cross the network).
    GetRange {
        /// Partition key.
        key: PartKey,
        /// Offset within the partition.
        offset: u64,
        /// Bytes wanted.
        len: u64,
    },
    /// Rename a resident partition key in place (no byte movement); used
    /// to commit staged partitions. Replies `Flag(false)` if `from` is
    /// absent.
    Rename {
        /// Current key.
        from: PartKey,
        /// New key (overwrites any existing entry).
        to: PartKey,
    },
    /// Drop a partition; replies whether it was resident.
    Delete {
        /// Partition key.
        key: PartKey,
    },
    /// Snapshot service counters.
    Stats,
    /// Liveness probe: the worker echoes its id and its current epoch.
    Ping,
    /// Graceful termination: the worker finishes every request queued
    /// before this one (FIFO drain), acknowledges with [`Reply::Done`],
    /// and exits. A TCP server closes its listener after the ack.
    Shutdown,
    /// Control-plane epoch grant: the supervisor installs the epoch the
    /// master assigned at registration. The worker adopts it and echoes
    /// it in every subsequent `Pong`.
    SetEpoch(u64),
    /// Control-plane **master**-epoch announcement: a master (booting,
    /// or a standby taking over) tells the worker which master epoch
    /// now rules. The worker raises its watermark and from then on
    /// bounces `Fenced` traffic stamped with any lower master epoch.
    /// A worker that has already seen a *higher* epoch answers
    /// [`StoreError::StaleEpoch`] — the deposed sender must self-fence.
    SetMasterEpoch(u64),
    /// An epoch-fenced data request: the client stamps the epoch it
    /// believes the worker holds (from the master's epoch table). A
    /// worker whose own epoch differs answers
    /// [`StoreError::StaleEpoch`] instead of serving — a fenced zombie
    /// can neither serve pre-crash partitions nor absorb writes meant
    /// for its successor. `epoch == 0` is never stamped (0 means
    /// "unregistered").
    Fenced {
        /// The epoch the client expects the worker to hold.
        epoch: u64,
        /// The **master epoch** the issuing control plane acts under
        /// (DESIGN.md §4.14). 0 = unstamped (plain clients; the
        /// pre-failover wire behaviour). A worker that has seen a
        /// higher master epoch answers [`StoreError::StaleEpoch`] —
        /// that is how a deposed master's writes bounce forever.
        master: u64,
        /// The wrapped data-path request (never control-plane).
        inner: Box<Request>,
    },
    /// A data request stamped as **background** traffic: maintenance
    /// byte streams (recovery sweeps, repartition pushes, spill
    /// writebacks, refills) that the worker paces through the
    /// background share of its NIC
    /// ([`crate::throttle::NicScheduler`]) so they cannot starve
    /// foreground client traffic. Canonical nesting is
    /// `Fenced { Background { data } }` — the fence is checked first,
    /// the class unwrapped second.
    Background {
        /// The wrapped data-path request (never control-plane, never
        /// another `Background` or `Fenced`).
        inner: Box<Request>,
    },
}

impl Request {
    /// Whether the request is control-plane
    /// (`Stats`/`Ping`/`Shutdown`/`SetEpoch`): exempt from fault
    /// injection and op counting on every transport.
    pub fn is_control(&self) -> bool {
        match self {
            Request::Stats
            | Request::Ping
            | Request::Shutdown
            | Request::SetEpoch(_)
            | Request::SetMasterEpoch(_) => true,
            Request::Fenced { inner, .. } | Request::Background { inner } => inner.is_control(),
            _ => false,
        }
    }

    /// Wraps a data request in an epoch fence (no-op for `epoch == 0`,
    /// the "epoch unknown" sentinel, and for control requests). The
    /// master-epoch stamp stays 0 (unstamped) — plain clients read for
    /// themselves, not for a master.
    pub fn fenced(self, epoch: u64) -> Request {
        self.fenced_master(epoch, 0)
    }

    /// Wraps a data request in an epoch fence carrying a master-epoch
    /// stamp — the supervisor/repartition path, where the request acts
    /// *for* a specific master incarnation and must bounce once that
    /// incarnation is deposed. Restamps an existing fence in place.
    pub fn fenced_master(self, epoch: u64, master: u64) -> Request {
        if self.is_control() {
            return self;
        }
        match self {
            Request::Fenced { inner, .. } => Request::Fenced {
                epoch,
                master,
                inner,
            },
            _ if epoch == 0 && master == 0 => self,
            inner => Request::Fenced {
                epoch,
                master,
                inner: Box::new(inner),
            },
        }
    }

    /// Stamps a data request as background traffic (no-op for control
    /// requests and requests already stamped). Applied *inside* any
    /// epoch fence: `req.background().fenced(e)` yields the canonical
    /// `Fenced { Background { data } }` nesting, and calling this on an
    /// existing fence restamps its interior.
    pub fn background(self) -> Request {
        match self {
            r if r.is_control() => r,
            Request::Background { inner } => Request::Background { inner },
            Request::Fenced { epoch, master, inner } => Request::Fenced {
                epoch,
                master,
                inner: Box::new(inner.background()),
            },
            r => Request::Background { inner: Box::new(r) },
        }
    }
}

/// A worker's answer — pure data, one uniform type per transport stream
/// so fork-join readers can select over many outstanding replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success without payload (`Put`, `Shutdown` ack).
    Done,
    /// Payload bytes (`Get`, `GetRange`). Over TCP the view borrows the
    /// receive frame's buffer (zero-copy).
    Data(Bytes),
    /// Boolean outcome (`Rename`: moved, `Delete`: was resident).
    Flag(bool),
    /// Service counters (`Stats`).
    Stats(WorkerStats),
    /// Liveness echo (`Ping`): the worker id and its current epoch
    /// (0 = not yet registered with the master).
    Pong {
        /// The worker id.
        worker: usize,
        /// The worker's current epoch.
        epoch: u64,
    },
    /// The request failed.
    Err(StoreError),
}

impl Reply {
    /// Interprets the reply as a unit result (`Put`/`Shutdown`).
    ///
    /// # Errors
    ///
    /// The carried error, or [`StoreError::Codec`] on a mismatched
    /// variant (a protocol violation over the wire).
    pub fn unit(self) -> Result<(), StoreError> {
        match self {
            Reply::Done => Ok(()),
            Reply::Err(e) => Err(e),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Interprets the reply as payload bytes (`Get`/`GetRange`).
    ///
    /// # Errors
    ///
    /// The carried error, or [`StoreError::Codec`] on a mismatched
    /// variant.
    pub fn bytes(self) -> Result<Bytes, StoreError> {
        match self {
            Reply::Data(b) => Ok(b),
            Reply::Err(e) => Err(e),
            other => Err(unexpected("Data", &other)),
        }
    }

    /// Interprets the reply as a boolean outcome (`Rename`/`Delete`).
    ///
    /// # Errors
    ///
    /// The carried error, or [`StoreError::Codec`] on a mismatched
    /// variant.
    pub fn flag(self) -> Result<bool, StoreError> {
        match self {
            Reply::Flag(b) => Ok(b),
            Reply::Err(e) => Err(e),
            other => Err(unexpected("Flag", &other)),
        }
    }

    /// Interprets the reply as service counters (`Stats`).
    ///
    /// # Errors
    ///
    /// The carried error, or [`StoreError::Codec`] on a mismatched
    /// variant.
    pub fn stats(self) -> Result<WorkerStats, StoreError> {
        match self {
            Reply::Stats(s) => Ok(s),
            Reply::Err(e) => Err(e),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Interprets the reply as a liveness echo (`Ping`).
    ///
    /// # Errors
    ///
    /// The carried error, or [`StoreError::Codec`] on a mismatched
    /// variant.
    pub fn pong(self) -> Result<usize, StoreError> {
        self.pong_epoch().map(|(w, _)| w)
    }

    /// Interprets the reply as a liveness echo with the worker's epoch.
    ///
    /// # Errors
    ///
    /// The carried error, or [`StoreError::Codec`] on a mismatched
    /// variant.
    pub fn pong_epoch(self) -> Result<(usize, u64), StoreError> {
        match self {
            Reply::Pong { worker, epoch } => Ok((worker, epoch)),
            Reply::Err(e) => Err(e),
            other => Err(unexpected("Pong", &other)),
        }
    }
}

fn unexpected(want: &str, got: &Reply) -> StoreError {
    StoreError::Codec(format!("expected {want} reply, got {got:?}"))
}

/// One in-flight request on the in-process channel transport: the
/// request plus its one-shot reply route.
#[derive(Debug)]
pub struct Envelope {
    /// The request.
    pub req: Request,
    /// Where the single [`Reply`] goes.
    pub reply: Sender<Reply>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partkey_ordering_and_hash() {
        let a = PartKey::new(1, 0);
        let b = PartKey::new(1, 1);
        let c = PartKey::new(2, 0);
        assert!(a < b && b < c);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&PartKey::new(1, 0)));
        assert!(!set.contains(&b));
    }

    #[test]
    fn parity_keys_are_marked_and_disjoint() {
        let data = PartKey::new(7, 2);
        let parity = PartKey::parity(7, 2);
        assert!(!data.is_parity());
        assert!(parity.is_parity());
        assert_ne!(data, parity);
        // Parity and staged markers occupy different bits.
        assert_ne!(parity, data.staged());
        assert!(parity.staged().is_parity());
    }

    #[test]
    fn error_display() {
        let e = StoreError::NotFound(PartKey::new(3, 1));
        assert!(e.to_string().contains("not found"));
        assert!(StoreError::WorkerDown(2).to_string().contains("worker 2"));
        assert!(StoreError::UnknownFile(9).to_string().contains("9"));
        assert!(StoreError::Io(4).to_string().contains("worker 4"));
        assert!(StoreError::Io(MASTER_ENDPOINT).to_string().contains("master"));
        assert!(StoreError::Codec("bad version".into())
            .to_string()
            .contains("bad version"));
        assert!(StoreError::StaleEpoch(3).to_string().contains("worker 3"));
        assert!(StoreError::Degraded(5).to_string().contains("file 5"));
        assert!(StoreError::Corrupt(PartKey::new(4, 2))
            .to_string()
            .contains("checksum"));
    }

    #[test]
    fn retryability_classification() {
        assert!(StoreError::NotFound(PartKey::new(1, 0)).is_retryable());
        assert!(StoreError::WorkerDown(0).is_retryable());
        assert!(StoreError::Timeout(0).is_retryable());
        // Connection reset / refused are transient: retryable.
        assert!(StoreError::Io(0).is_retryable());
        // A stale epoch resolves by refreshing the epoch table.
        assert!(StoreError::StaleEpoch(0).is_retryable());
        // Corruption is an erasure: parity decode or heal can succeed.
        assert!(StoreError::Corrupt(PartKey::new(1, 0)).is_retryable());
        assert_eq!(StoreError::Corrupt(PartKey::new(1, 0)).endpoint(), None);
        // Metadata and protocol violations are permanent.
        assert!(!StoreError::UnknownFile(1).is_retryable());
        assert!(!StoreError::AlreadyExists(1).is_retryable());
        assert!(!StoreError::Codec("bad opcode".into()).is_retryable());
        // Fast-fail shedding is a terminal answer for this attempt.
        assert!(!StoreError::Degraded(1).is_retryable());
    }

    #[test]
    fn endpoint_extraction() {
        assert_eq!(StoreError::Io(3).endpoint(), Some(3));
        assert_eq!(StoreError::Timeout(1).endpoint(), Some(1));
        assert_eq!(StoreError::UnknownFile(1).endpoint(), None);
    }

    #[test]
    fn reply_accessors_enforce_variants() {
        assert!(Reply::Done.unit().is_ok());
        assert_eq!(Reply::Flag(true).flag(), Ok(true));
        assert_eq!(Reply::Pong { worker: 7, epoch: 2 }.pong(), Ok(7));
        assert_eq!(
            Reply::Pong { worker: 7, epoch: 2 }.pong_epoch(),
            Ok((7, 2))
        );
        assert!(matches!(
            Reply::Done.bytes(),
            Err(StoreError::Codec(_))
        ));
        let e = StoreError::NotFound(PartKey::new(1, 2));
        assert_eq!(Reply::Err(e.clone()).bytes(), Err(e));
    }

    #[test]
    fn control_plane_classification() {
        assert!(Request::Stats.is_control());
        assert!(Request::Ping.is_control());
        assert!(Request::Shutdown.is_control());
        assert!(Request::SetEpoch(3).is_control());
        assert!(!Request::Get { key: PartKey::new(1, 0) }.is_control());
        assert!(!Request::GetParity { key: PartKey::parity(1, 0) }.is_control());
        assert!(!Request::Delete { key: PartKey::new(1, 0) }.is_control());
        // A fence around a data request stays data-plane.
        assert!(!Request::Get { key: PartKey::new(1, 0) }.fenced(2).is_control());
    }

    #[test]
    fn background_stamping_nests_inside_fences() {
        let get = Request::Get { key: PartKey::new(1, 0) };
        let bg = get.clone().background();
        assert!(matches!(bg, Request::Background { .. }));
        // Idempotent: restamping changes nothing.
        assert_eq!(bg.clone().background(), bg);
        // Canonical nesting: fence outside, class inside.
        let both = get.clone().background().fenced(3);
        match &both {
            Request::Fenced { epoch: 3, master: 0, inner } => {
                assert!(matches!(**inner, Request::Background { .. }));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        // Stamping an existing fence restamps its interior instead of
        // wrapping the fence.
        assert_eq!(get.clone().fenced(3).background(), both);
        // Control requests are never stamped, and a stamped data
        // request stays data-plane.
        assert_eq!(Request::Ping.background(), Request::Ping);
        assert!(!get.background().is_control());
    }

    #[test]
    fn fencing_wraps_only_data_requests_with_known_epochs() {
        let get = Request::Get { key: PartKey::new(1, 0) };
        assert!(matches!(
            get.clone().fenced(4),
            Request::Fenced { epoch: 4, master: 0, .. }
        ));
        // Epoch 0 means "unknown": no fence, wire-identical to PR 3.
        assert_eq!(get.clone().fenced(0), get);
        // Control requests are never fenced.
        assert_eq!(Request::Ping.fenced(4), Request::Ping);
    }

    #[test]
    fn master_epoch_stamping() {
        let get = Request::Get { key: PartKey::new(1, 0) };
        // SetMasterEpoch is control-plane: no faults, no op counting,
        // never wrapped.
        assert!(Request::SetMasterEpoch(2).is_control());
        assert_eq!(
            Request::SetMasterEpoch(2).fenced(3),
            Request::SetMasterEpoch(2)
        );
        // A master stamp fences even with a zero worker epoch.
        assert!(matches!(
            get.clone().fenced_master(0, 2),
            Request::Fenced { epoch: 0, master: 2, .. }
        ));
        // Restamping an existing fence replaces both stamps in place
        // rather than nesting.
        let restamped = get.clone().fenced(4).fenced_master(5, 7);
        match restamped {
            Request::Fenced { epoch: 5, master: 7, inner } => {
                assert_eq!(*inner, get);
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }
}

//! Algorithm 2's executors: move bytes according to a
//! [`spcache_core::repartition::RepartitionPlan`].
//!
//! [`run_parallel`] is the paper's scheme (§6.2): each job runs on an
//! executor thread standing in for the SP-Repartitioner of the worker that
//! already holds one of the file's partitions; executors handle disjoint
//! file sets concurrently. [`run_sequential`] is the strawman it is
//! compared against in Fig. 16 — every file (changed or not) is collected
//! and re-distributed one at a time through a single node.

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use spcache_core::repartition::{RepartitionJob, RepartitionPlan};
use spcache_ec::{join_shards_bytes, split_into_shards};
use std::sync::Arc;

use crate::master::Master;
use crate::rpc::{PartKey, StoreError, WorkerRequest};

/// Executes one repartition job: pull old partitions, reassemble,
/// re-split, push new partitions, delete old ones, and swap the metadata.
fn execute_job(
    job: &RepartitionJob,
    file_id: u64,
    master: &Master,
    workers: &[Sender<WorkerRequest>],
) -> Result<(), StoreError> {
    let (size, _) = master.peek(file_id)?;

    // Pull the old partitions (the executor's own partition needs no
    // network hop in the real system; here every pull goes through the
    // owning worker's throttle, which is also true of Alluxio's local
    // short-circuit-free path).
    let mut shards: Vec<Bytes> = Vec::with_capacity(job.old_servers.len());
    for (j, &server) in job.old_servers.iter().enumerate() {
        let (tx, rx) = bounded(1);
        workers[server]
            .send(WorkerRequest::Get {
                key: PartKey::new(file_id, j as u32),
                reply: tx,
            })
            .map_err(|_| StoreError::WorkerDown(server))?;
        shards.push(rx.recv().map_err(|_| StoreError::WorkerDown(server))??);
    }
    let data = join_shards_bytes(&shards, size);

    // Re-split and push to the new servers in parallel.
    let new_shards = split_into_shards(&data, job.new_servers.len());
    let mut pending = Vec::with_capacity(new_shards.len());
    for (j, (shard, &server)) in new_shards.into_iter().zip(&job.new_servers).enumerate() {
        let (tx, rx) = bounded(1);
        workers[server]
            .send(WorkerRequest::Put {
                // Stage under a shifted partition index space? Not needed:
                // old keys are (file, 0..k_old), new keys use the same
                // space but we delete old keys afterwards, and any key
                // overlap (same j, same server) is an overwrite with the
                // correct new content.
                key: PartKey::new(file_id, j as u32),
                data: Bytes::from(shard),
                reply: tx,
            })
            .map_err(|_| StoreError::WorkerDown(server))?;
        pending.push((server, rx));
    }
    for (server, rx) in pending {
        rx.recv().map_err(|_| StoreError::WorkerDown(server))??;
    }

    // Metadata swap, then garbage-collect stale old partitions (those not
    // overwritten by a new one with the same (index, server)).
    master.apply_placement(file_id, job.new_servers.clone())?;
    for (j, &server) in job.old_servers.iter().enumerate() {
        let still_valid = job
            .new_servers
            .get(j)
            .is_some_and(|&new_server| new_server == server);
        if !still_valid {
            let (tx, rx) = bounded(1);
            if workers[server]
                .send(WorkerRequest::Delete {
                    key: PartKey::new(file_id, j as u32),
                    reply: tx,
                })
                .is_ok()
            {
                let _ = rx.recv();
            }
        }
    }
    Ok(())
}

/// Runs the plan with one executor thread per involved worker, each
/// processing its disjoint job set (the parallel scheme of §6.2).
/// `ids[i]` maps the plan's dense file indices to store file ids.
///
/// # Errors
///
/// Returns the first executor error encountered.
pub fn run_parallel(
    plan: &RepartitionPlan,
    ids: &[u64],
    master: &Arc<Master>,
    workers: &[Sender<WorkerRequest>],
) -> Result<(), StoreError> {
    let by_executor = plan.jobs_by_executor(workers.len());
    let results: Vec<Result<(), StoreError>> = std::thread::scope(|s| {
        let handles: Vec<_> = by_executor
            .into_iter()
            .filter(|jobs| !jobs.is_empty())
            .map(|jobs| {
                let master = Arc::clone(master);
                s.spawn(move || {
                    for job in jobs {
                        execute_job(job, ids[job.file], &master, workers)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// The naive strawman: a single thread collects **every** file (changed or
/// not) and redistributes it sequentially — the paper measures this at two
/// orders of magnitude slower (Fig. 16).
///
/// # Errors
///
/// Returns the first error encountered.
pub fn run_sequential(
    plan: &RepartitionPlan,
    ids: &[u64],
    master: &Arc<Master>,
    workers: &[Sender<WorkerRequest>],
) -> Result<(), StoreError> {
    // Unchanged files are still collected and re-written in place (that is
    // what makes the strawman slow).
    for &i in &plan.unchanged {
        let file_id = ids[i];
        let (size, servers) = master.peek(file_id)?;
        let mut shards: Vec<Bytes> = Vec::with_capacity(servers.len());
        for (j, &server) in servers.iter().enumerate() {
            let (tx, rx) = bounded(1);
            workers[server]
                .send(WorkerRequest::Get {
                    key: PartKey::new(file_id, j as u32),
                    reply: tx,
                })
                .map_err(|_| StoreError::WorkerDown(server))?;
            shards.push(rx.recv().map_err(|_| StoreError::WorkerDown(server))??);
        }
        let data = join_shards_bytes(&shards, size);
        for (j, (&server, shard)) in servers
            .iter()
            .zip(split_into_shards(&data, servers.len()))
            .enumerate()
        {
            let (tx, rx) = bounded(1);
            workers[server]
                .send(WorkerRequest::Put {
                    key: PartKey::new(file_id, j as u32),
                    data: Bytes::from(shard),
                    reply: tx,
                })
                .map_err(|_| StoreError::WorkerDown(server))?;
            rx.recv().map_err(|_| StoreError::WorkerDown(server))??;
        }
    }
    for job in &plan.jobs {
        execute_job(job, ids[job.file], master, workers)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StoreCluster;
    use crate::config::StoreConfig;
    use rand::SeedableRng;
    use spcache_core::repartition::plan_repartition;
    use spcache_sim::Xoshiro256StarStar;

    fn payload(id: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((i as u64 * 131 + id * 17 + 7) % 256) as u8)
            .collect()
    }

    /// Builds a cluster with `n_files` single-partition files and returns
    /// everything needed to plan against it.
    fn seeded_cluster(
        n_workers: usize,
        n_files: u64,
        file_len: usize,
    ) -> (StoreCluster, Vec<Vec<u8>>) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
        let client = cluster.client();
        let mut contents = Vec::new();
        for id in 0..n_files {
            let data = payload(id, file_len);
            client
                .write(id, &data, &[(id as usize) % n_workers])
                .unwrap();
            contents.push(data);
        }
        (cluster, contents)
    }

    #[test]
    fn parallel_repartition_preserves_contents() {
        let (cluster, contents) = seeded_cluster(6, 12, 5_000);
        let client = cluster.client();
        // Make files 0..3 hot.
        for id in 0..3u64 {
            for _ in 0..50 {
                let _ = client.read(id).unwrap();
            }
        }
        let (ids, plan, _) = cluster.master().plan_rebalance(
            6,
            f64::INFINITY.min(1e12),
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            3,
        );
        assert!(!plan.jobs.is_empty(), "hot files should be repartitioned");
        run_parallel(&plan, &ids, cluster.master(), &cluster.worker_senders()).unwrap();
        for (id, data) in contents.iter().enumerate() {
            assert_eq!(
                client.read_quiet(id as u64).unwrap(),
                *data,
                "file {id} corrupted by repartition"
            );
        }
        // Hot files really are split now.
        assert!(cluster.master().peek(0).unwrap().1.len() > 1);
    }

    #[test]
    fn sequential_repartition_preserves_contents() {
        let (cluster, contents) = seeded_cluster(4, 8, 3_000);
        let client = cluster.client();
        for _ in 0..40 {
            let _ = client.read(0).unwrap();
        }
        for id in 0..8u64 {
            let _ = client.read(id).unwrap();
        }
        let (ids, plan, _) = cluster.master().plan_rebalance(
            4,
            1e12,
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            5,
        );
        run_sequential(&plan, &ids, cluster.master(), &cluster.worker_senders()).unwrap();
        for (id, data) in contents.iter().enumerate() {
            assert_eq!(client.read_quiet(id as u64).unwrap(), *data, "file {id}");
        }
    }

    #[test]
    fn merge_job_back_to_single_partition() {
        // A file split 3 ways merges back to 1 after going cold.
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let data = payload(0, 9_001);
        client.write(0, &data, &[0, 1, 2]).unwrap();
        let (ids, fileset, map) = cluster.master().snapshot(4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let plan = plan_repartition(&fileset, &map, &[1], &mut rng);
        assert_eq!(plan.jobs.len(), 1);
        run_parallel(&plan, &ids, cluster.master(), &cluster.worker_senders()).unwrap();
        assert_eq!(cluster.master().peek(0).unwrap().1.len(), 1);
        assert_eq!(client.read_quiet(0).unwrap(), data);
    }

    #[test]
    fn stale_partitions_are_garbage_collected() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        client.write(0, &payload(0, 4_000), &[0, 1]).unwrap();
        let (ids, fileset, map) = cluster.master().snapshot(4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let plan = plan_repartition(&fileset, &map, &[4], &mut rng);
        run_parallel(&plan, &ids, cluster.master(), &cluster.worker_senders()).unwrap();
        // Total resident partitions must equal the new k (no leftovers).
        let total: usize = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_parts)
            .sum();
        assert_eq!(total, 4, "stale partitions left behind");
    }

    #[test]
    fn parallel_is_faster_than_sequential_under_throttling() {
        // Fig. 16's shape: with throttled NICs and many files, the
        // parallel scheme finishes much sooner than the collect-everything
        // sequential scheme.
        let n_workers = 8;
        let cluster = StoreCluster::spawn(StoreConfig::throttled(n_workers, 200e6));
        let client = cluster.client();
        let n_files = 40u64;
        let len = 200_000;
        for id in 0..n_files {
            client
                .write(id, &payload(id, len), &[(id as usize) % n_workers])
                .unwrap();
        }
        // Skewed accesses.
        for id in 0..n_files {
            let reps = if id < 4 { 60 } else { 1 };
            for _ in 0..reps {
                let _ = client.read(id).unwrap();
            }
        }
        let (ids, plan, _) = cluster.master().plan_rebalance(
            n_workers,
            200e6,
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            7,
        );

        let t0 = std::time::Instant::now();
        run_parallel(&plan, &ids, cluster.master(), &cluster.worker_senders()).unwrap();
        let par = t0.elapsed().as_secs_f64();

        // Fresh identical cluster for the sequential run.
        let cluster2 = StoreCluster::spawn(StoreConfig::throttled(n_workers, 200e6));
        let client2 = cluster2.client();
        for id in 0..n_files {
            client2
                .write(id, &payload(id, len), &[(id as usize) % n_workers])
                .unwrap();
        }
        for id in 0..n_files {
            let reps = if id < 4 { 60 } else { 1 };
            for _ in 0..reps {
                let _ = client2.read(id).unwrap();
            }
        }
        let (ids2, plan2, _) = cluster2.master().plan_rebalance(
            n_workers,
            200e6,
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            7,
        );
        let t1 = std::time::Instant::now();
        run_sequential(&plan2, &ids2, cluster2.master(), &cluster2.worker_senders()).unwrap();
        let seq = t1.elapsed().as_secs_f64();

        assert!(
            seq > par * 2.0,
            "sequential {seq}s should be much slower than parallel {par}s"
        );
    }
}

//! Algorithm 2's executors: move bytes according to a
//! [`spcache_core::repartition::RepartitionPlan`].
//!
//! [`run_parallel`] is the paper's scheme (§6.2): each job runs on an
//! executor thread standing in for the SP-Repartitioner of the worker that
//! already holds one of the file's partitions; executors handle disjoint
//! file sets concurrently. [`run_sequential`] is the strawman it is
//! compared against in Fig. 16 — every file (changed or not) is collected
//! and re-distributed one at a time through a single node.
//!
//! Executors are transport-agnostic: every byte moves through a
//! [`Transport`], so the same code repartitions an in-process cluster
//! and a fleet of `spcached` processes over TCP.
//!
//! All executor traffic is **background-stamped**
//! ([`Request::background`]): repartition pulls and pushes ride the
//! workers' background NIC share (§4.4), so a rebalance never starves
//! the foreground read path it is trying to improve.

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use spcache_core::repartition::{RepartitionJob, RepartitionPlan};
use spcache_ec::{join_shards_bytes, split_shards_bytes};
use std::time::Duration;

use crate::master::MetaService;
use crate::rpc::{PartKey, Reply, Request, StoreError};
use crate::transport::Transport;

/// Default for how long an executor waits on any single worker reply
/// before giving the worker up as hung. Bounds every blocking call in a
/// job, so a worker dying (or hanging) mid-repartition can never
/// deadlock the executor fleet. Override per-cluster with
/// [`crate::config::StoreConfig::with_executor_deadline`] and the
/// `*_with_deadline` entry points.
pub const DEFAULT_EXECUTOR_DEADLINE: Duration = Duration::from_secs(5);

/// Whether an error means "this worker is unavailable" (dead, hung, or
/// unreachable) as opposed to a logic/metadata problem.
fn is_availability(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::WorkerDown(_) | StoreError::Timeout(_) | StoreError::Io(_)
    )
}

/// Awaits one executor-side reply with the deadline, updating the
/// master's health table from the outcome.
fn await_executor_reply(
    master: &dyn MetaService,
    server: usize,
    rx: &Receiver<Reply>,
    deadline: Duration,
) -> Result<Reply, StoreError> {
    match rx.recv_timeout(deadline) {
        Ok(Reply::Err(e)) => {
            if is_availability(&e) {
                master.suspect(server);
            } else {
                master.mark_alive(server);
            }
            Err(e)
        }
        Ok(reply) => {
            master.mark_alive(server);
            Ok(reply)
        }
        Err(RecvTimeoutError::Disconnected) => {
            master.mark_dead(server);
            Err(StoreError::WorkerDown(server))
        }
        Err(RecvTimeoutError::Timeout) => {
            master.suspect(server);
            Err(StoreError::Timeout(server))
        }
    }
}

/// One synchronous executor-side call with health bookkeeping.
fn call(
    master: &dyn MetaService,
    transport: &dyn Transport,
    server: usize,
    req: Request,
    deadline: Duration,
) -> Result<Reply, StoreError> {
    let rx = transport.submit(server, req).inspect_err(|e| {
        match e {
            StoreError::WorkerDown(_) => master.mark_dead(server),
            StoreError::Io(_) | StoreError::Timeout(_) => {
                master.suspect(server);
            }
            _ => {}
        }
    })?;
    await_executor_reply(master, server, &rx, deadline)
}

/// Pushes one shard to `server`, synchronously.
fn push_shard(
    master: &dyn MetaService,
    transport: &dyn Transport,
    server: usize,
    key: PartKey,
    shard: Bytes,
    deadline: Duration,
) -> Result<(), StoreError> {
    let sum = spcache_integrity::sum(&shard);
    call(
        master,
        transport,
        server,
        Request::Put { key, data: shard, sum }.background(),
        deadline,
    )?
    .unit()
}

/// Executes one repartition job: pull old partitions, reassemble,
/// re-split, push new partitions, delete old ones, and swap the metadata.
///
/// Target workers that die mid-job are skipped: their shard is re-pushed
/// to the lowest-indexed live worker not already holding a partition of
/// this file, and the metadata swap records the substitute. Source
/// failures (an old partition's holder is gone) abort the job with the
/// old placement untouched — the file is degraded and must heal through
/// the under-store, since this cache keeps no second copy.
fn execute_job(
    job: &RepartitionJob,
    file_id: u64,
    master: &dyn MetaService,
    transport: &dyn Transport,
    deadline: Duration,
) -> Result<(), StoreError> {
    let (size, _) = master.peek(file_id)?;

    // Pull the old partitions (the executor's own partition needs no
    // network hop in the real system; here every pull goes through the
    // owning worker's throttle, which is also true of Alluxio's local
    // short-circuit-free path).
    let mut shards: Vec<Bytes> = Vec::with_capacity(job.old_servers.len());
    for (j, &server) in job.old_servers.iter().enumerate() {
        let req = Request::Get {
            key: PartKey::new(file_id, j as u32),
        }
        .background();
        shards.push(call(master, transport, server, req, deadline)?.bytes()?);
    }
    let data = join_shards_bytes(&shards, size);

    // Targets may have died since planning; replace dead ones up front,
    // keeping the distinct-server invariant within the file.
    let mut targets = job.new_servers.clone();
    let substitute_targets = |targets: &mut Vec<usize>, failed: Option<usize>| {
        let live = master.live_workers(transport.n_workers());
        for i in 0..targets.len() {
            let dead = Some(targets[i]) == failed || !master.is_alive(targets[i]);
            if dead {
                if let Some(sub) = live
                    .iter()
                    .copied()
                    .find(|w| Some(*w) != failed && !targets.contains(w))
                {
                    targets[i] = sub;
                }
                // No substitute available: leave it and let the push
                // surface the error.
            }
        }
    };
    substitute_targets(&mut targets, None);

    // Re-split and push to the target servers in parallel under STAGED
    // keys: nothing in the readable (unstaged) key space changes until
    // commit, so a job aborted here leaves the old layout intact and
    // the file readable. A target failing mid-push gets its shard
    // re-routed to a substitute.
    let data = Bytes::from(data);
    let new_shards: Vec<Bytes> = split_shards_bytes(&data, targets.len());
    let push_result = (|| {
        let mut pending = Vec::with_capacity(new_shards.len());
        for j in 0..new_shards.len() {
            let server = targets[j];
            let key = PartKey::new(file_id, j as u32).staged();
            match transport.submit(
                server,
                Request::Put {
                    key,
                    data: new_shards[j].clone(),
                    sum: spcache_integrity::sum(&new_shards[j]),
                }
                .background(),
            ) {
                Ok(rx) => pending.push((j, server, rx)),
                Err(_) => {
                    master.mark_dead(server);
                    substitute_targets(&mut targets, Some(server));
                    if targets[j] == server {
                        return Err(StoreError::WorkerDown(server));
                    }
                    push_shard(
                        master,
                        transport,
                        targets[j],
                        key,
                        new_shards[j].clone(),
                        deadline,
                    )?;
                }
            }
        }
        for (j, server, rx) in pending {
            if let Err(e) =
                await_executor_reply(master, server, &rx, deadline).and_then(Reply::unit)
            {
                if is_availability(&e) {
                    substitute_targets(&mut targets, Some(server));
                    if targets[j] == server {
                        return Err(e); // no live substitute left
                    }
                    push_shard(
                        master,
                        transport,
                        targets[j],
                        PartKey::new(file_id, j as u32).staged(),
                        new_shards[j].clone(),
                        deadline,
                    )?;
                } else {
                    return Err(e);
                }
            }
        }
        Ok(())
    })();
    if let Err(e) = push_result {
        // Abort: clear any staged keys (best effort) and leave the old
        // layout — still fully readable — in place.
        for (j, &server) in targets.iter().enumerate() {
            discard(
                transport,
                server,
                PartKey::new(file_id, j as u32).staged(),
                deadline,
            );
        }
        return Err(e);
    }

    // Commit: drop old keys, unstage new ones, swap the metadata. (Same
    // sequence as the online adjuster; a target dying inside this window
    // leaves the file degraded, which the under-store heal repairs.)
    for (j, &server) in job.old_servers.iter().enumerate() {
        discard(transport, server, PartKey::new(file_id, j as u32), deadline);
    }
    for (j, &server) in targets.iter().enumerate() {
        let key = PartKey::new(file_id, j as u32);
        let renamed = call(
            master,
            transport,
            server,
            Request::Rename {
                from: key.staged(),
                to: key,
            }
            .background(),
            deadline,
        )?
        .flag()?;
        debug_assert!(renamed, "staged partition vanished before commit");
    }
    master.apply_placement(file_id, targets)
}

/// Best-effort delete of one key; errors and dead workers are ignored.
fn discard(transport: &dyn Transport, server: usize, key: PartKey, deadline: Duration) {
    if let Ok(rx) = transport.submit(server, Request::Delete { key }.background()) {
        let _ = rx.recv_timeout(deadline);
    }
}

/// Runs the plan with one executor thread per involved worker, each
/// processing its disjoint job set (the parallel scheme of §6.2).
/// `ids[i]` maps the plan's dense file indices to store file ids.
///
/// Jobs that hit a dead or hung worker are **skipped**, not fatal: a
/// dead target is substituted inside [`execute_job`], and a dead source
/// leaves the file degraded (recoverable only through the under-store).
/// Every blocking wait is bounded by the executor deadline
/// ([`DEFAULT_EXECUTOR_DEADLINE`] unless overridden), so a worker
/// dying mid-repartition cannot deadlock the sweep. Skipped file ids
/// are returned.
///
/// # Errors
///
/// Returns the first non-availability executor error (metadata
/// inconsistencies and the like).
pub fn run_parallel(
    plan: &RepartitionPlan,
    ids: &[u64],
    master: &dyn MetaService,
    transport: &dyn Transport,
) -> Result<Vec<u64>, StoreError> {
    run_parallel_with_deadline(plan, ids, master, transport, DEFAULT_EXECUTOR_DEADLINE)
}

/// [`run_parallel`] with an explicit per-reply executor deadline
/// (normally [`crate::config::StoreConfig::executor_deadline`]).
///
/// # Errors
///
/// Returns the first non-availability executor error (metadata
/// inconsistencies and the like).
pub fn run_parallel_with_deadline(
    plan: &RepartitionPlan,
    ids: &[u64],
    master: &dyn MetaService,
    transport: &dyn Transport,
    deadline: Duration,
) -> Result<Vec<u64>, StoreError> {
    let by_executor = plan.jobs_by_executor(transport.n_workers());
    let results: Vec<Result<Vec<u64>, StoreError>> = std::thread::scope(|s| {
        let handles: Vec<_> = by_executor
            .into_iter()
            .filter(|jobs| !jobs.is_empty())
            .map(|jobs| {
                s.spawn(move || {
                    let mut skipped = Vec::new();
                    for job in jobs {
                        match execute_job(job, ids[job.file], master, transport, deadline) {
                            Ok(()) => {}
                            Err(e) if is_availability(&e) => {
                                skipped.push(ids[job.file]);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(skipped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("executor panicked"))
            .collect()
    });
    let mut skipped = Vec::new();
    for r in results {
        skipped.extend(r?);
    }
    skipped.sort_unstable();
    Ok(skipped)
}

/// The naive strawman: a single thread collects **every** file (changed or
/// not) and redistributes it sequentially — the paper measures this at two
/// orders of magnitude slower (Fig. 16).
///
/// # Errors
///
/// Returns the first error encountered.
pub fn run_sequential(
    plan: &RepartitionPlan,
    ids: &[u64],
    master: &dyn MetaService,
    transport: &dyn Transport,
) -> Result<(), StoreError> {
    run_sequential_with_deadline(plan, ids, master, transport, DEFAULT_EXECUTOR_DEADLINE)
}

/// [`run_sequential`] with an explicit per-reply executor deadline.
///
/// # Errors
///
/// Returns the first error encountered.
pub fn run_sequential_with_deadline(
    plan: &RepartitionPlan,
    ids: &[u64],
    master: &dyn MetaService,
    transport: &dyn Transport,
    deadline: Duration,
) -> Result<(), StoreError> {
    // Unchanged files are still collected and re-written in place (that is
    // what makes the strawman slow).
    for &i in &plan.unchanged {
        let file_id = ids[i];
        let (size, servers) = master.peek(file_id)?;
        let mut shards: Vec<Bytes> = Vec::with_capacity(servers.len());
        for (j, &server) in servers.iter().enumerate() {
            let req = Request::Get {
                key: PartKey::new(file_id, j as u32),
            }
            .background();
            shards.push(call(master, transport, server, req, deadline)?.bytes()?);
        }
        let data = Bytes::from(join_shards_bytes(&shards, size));
        for (j, (&server, shard)) in servers
            .iter()
            .zip(split_shards_bytes(&data, servers.len()))
            .enumerate()
        {
            push_shard(
                master,
                transport,
                server,
                PartKey::new(file_id, j as u32),
                shard,
                deadline,
            )?;
        }
    }
    for job in &plan.jobs {
        execute_job(job, ids[job.file], master, transport, deadline)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StoreCluster;
    use crate::config::StoreConfig;
    use rand::SeedableRng;
    use spcache_core::repartition::plan_repartition;
    use spcache_sim::Xoshiro256StarStar;

    fn payload(id: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((i as u64 * 131 + id * 17 + 7) % 256) as u8)
            .collect()
    }

    /// Builds a cluster with `n_files` single-partition files and returns
    /// everything needed to plan against it.
    fn seeded_cluster(
        n_workers: usize,
        n_files: u64,
        file_len: usize,
    ) -> (StoreCluster, Vec<Vec<u8>>) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
        let client = cluster.client();
        let mut contents = Vec::new();
        for id in 0..n_files {
            let data = payload(id, file_len);
            client
                .write(id, &data, &[(id as usize) % n_workers])
                .unwrap();
            contents.push(data);
        }
        (cluster, contents)
    }

    #[test]
    fn parallel_repartition_preserves_contents() {
        let (cluster, contents) = seeded_cluster(6, 12, 5_000);
        let client = cluster.client();
        // Make files 0..3 hot.
        for id in 0..3u64 {
            for _ in 0..50 {
                let _ = client.read(id).unwrap();
            }
        }
        let (ids, plan, _) = cluster.master().plan_rebalance(
            6,
            f64::INFINITY.min(1e12),
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            3,
        );
        assert!(!plan.jobs.is_empty(), "hot files should be repartitioned");
        run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
        for (id, data) in contents.iter().enumerate() {
            assert_eq!(
                client.read_quiet(id as u64).unwrap(),
                *data,
                "file {id} corrupted by repartition"
            );
        }
        // Hot files really are split now.
        assert!(cluster.master().peek(0).unwrap().1.len() > 1);
    }

    #[test]
    fn sequential_repartition_preserves_contents() {
        let (cluster, contents) = seeded_cluster(4, 8, 3_000);
        let client = cluster.client();
        for _ in 0..40 {
            let _ = client.read(0).unwrap();
        }
        for id in 0..8u64 {
            let _ = client.read(id).unwrap();
        }
        let (ids, plan, _) = cluster.master().plan_rebalance(
            4,
            1e12,
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            5,
        );
        run_sequential(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref())
            .unwrap();
        for (id, data) in contents.iter().enumerate() {
            assert_eq!(client.read_quiet(id as u64).unwrap(), *data, "file {id}");
        }
    }

    #[test]
    fn merge_job_back_to_single_partition() {
        // A file split 3 ways merges back to 1 after going cold.
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let data = payload(0, 9_001);
        client.write(0, &data, &[0, 1, 2]).unwrap();
        let (ids, fileset, map) = cluster.master().snapshot(4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let plan = plan_repartition(&fileset, &map, &[1], &mut rng);
        assert_eq!(plan.jobs.len(), 1);
        run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
        assert_eq!(cluster.master().peek(0).unwrap().1.len(), 1);
        assert_eq!(client.read_quiet(0).unwrap(), data);
    }

    #[test]
    fn stale_partitions_are_garbage_collected() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        client.write(0, &payload(0, 4_000), &[0, 1]).unwrap();
        let (ids, fileset, map) = cluster.master().snapshot(4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let plan = plan_repartition(&fileset, &map, &[4], &mut rng);
        run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
        // Total resident partitions must equal the new k (no leftovers).
        let total: usize = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_parts)
            .sum();
        assert_eq!(total, 4, "stale partitions left behind");
    }

    /// Hand-builds a plan splitting `file` from `old` onto `new` so the
    /// tests control exactly which workers are targeted.
    fn manual_plan(old: Vec<usize>, new: Vec<usize>, n_workers: usize) -> RepartitionPlan {
        use spcache_core::partition::PartitionMap;
        RepartitionPlan {
            jobs: vec![spcache_core::repartition::RepartitionJob {
                file: 0,
                executor: old[0],
                old_servers: old,
                new_servers: new.clone(),
            }],
            new_map: PartitionMap::new(vec![new], n_workers),
            unchanged: vec![],
        }
    }

    #[test]
    fn known_dead_target_is_substituted_before_push() {
        let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(5));
        let client = cluster.client();
        let data = payload(0, 8_000);
        client.write(0, &data, &[0]).unwrap();
        cluster.kill_worker(3); // master knows
        let plan = manual_plan(vec![0], vec![1, 2, 3], 5);
        let skipped =
            run_parallel(&plan, &[0], cluster.master().as_ref(), cluster.transport().as_ref())
                .unwrap();
        assert!(skipped.is_empty(), "dead target should be substituted");
        let (_, servers) = cluster.master().peek(0).unwrap();
        assert_eq!(servers.len(), 3);
        assert!(servers.iter().all(|&s| s != 3), "placed on dead worker");
        assert_eq!(client.read_quiet(0).unwrap(), data);
    }

    #[test]
    fn unannounced_target_death_mid_repartition_is_remapped_not_deadlocked() {
        // Worker 3 crashes on its first data-path request — which is the
        // repartitioner's staged push, so the death is discovered
        // mid-job. The executor must detect it (bounded wait), mark it
        // dead, re-route the shard to worker 4 and commit.
        let cfg = StoreConfig::unthrottled(5)
            .with_faults(crate::fault::FaultPlan::none().crash(3, 0));
        let cluster = StoreCluster::spawn(cfg);
        let client = cluster.client();
        let data = payload(0, 8_000);
        client.write(0, &data, &[0]).unwrap();
        let plan = manual_plan(vec![0], vec![1, 2, 3], 5);
        let t0 = std::time::Instant::now();
        let skipped =
            run_parallel(&plan, &[0], cluster.master().as_ref(), cluster.transport().as_ref())
                .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "repartition must not hang on a dead target"
        );
        assert!(skipped.is_empty());
        assert!(!cluster.master().is_alive(3), "death went unnoticed");
        let (_, servers) = cluster.master().peek(0).unwrap();
        assert!(servers.iter().all(|&s| s != 3));
        assert_eq!(client.read_quiet(0).unwrap(), data);
    }

    #[test]
    fn configured_deadline_bounds_waits_on_hung_sources() {
        // Worker 0 (the only source) hangs for 3 s on its first data
        // request. With a 50 ms executor deadline the pull must be
        // abandoned in well under a second — proof the deadline is
        // threaded through, not the 5 s default.
        let cfg = StoreConfig::unthrottled(3)
            .with_faults(crate::fault::FaultPlan::none().hang(0, 0, Duration::from_secs(3)));
        let cluster = StoreCluster::spawn(cfg);
        let client = cluster.client();
        // Bypass the faulted data path for setup: write before spawning
        // faults would still hit op 0, so write through worker 1 instead
        // and plan a job sourced at the hung worker 0 artificially.
        client.write(0, &payload(0, 2_000), &[1]).unwrap();
        // Source the job at worker 0, which holds nothing and hangs.
        let plan = manual_plan(vec![0], vec![1, 2], 3);
        let t0 = std::time::Instant::now();
        let skipped = run_parallel_with_deadline(
            &plan,
            &[0],
            cluster.master().as_ref(),
            cluster.transport().as_ref(),
            Duration::from_millis(50),
        )
        .unwrap();
        assert_eq!(skipped, vec![0], "hung source should skip the job");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "deadline not applied: waited {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn no_live_substitute_skips_job_and_keeps_file_readable() {
        // Both non-source workers die; the job cannot be placed and must
        // be skipped with the original layout untouched.
        let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let client = cluster.client();
        let data = payload(0, 4_000);
        client.write(0, &data, &[0]).unwrap();
        cluster.kill_worker(1);
        cluster.kill_worker(2);
        let plan = manual_plan(vec![0], vec![1, 2], 3);
        let skipped =
            run_parallel(&plan, &[0], cluster.master().as_ref(), cluster.transport().as_ref())
                .unwrap();
        assert_eq!(skipped, vec![0], "unplaceable job should be reported");
        assert_eq!(cluster.master().peek(0).unwrap().1, vec![0]);
        assert_eq!(client.read_quiet(0).unwrap(), data, "old layout corrupted");
    }

    #[test]
    fn parallel_is_faster_than_sequential_under_throttling() {
        // Fig. 16's shape: with throttled NICs and many files, the
        // parallel scheme finishes much sooner than the collect-everything
        // sequential scheme.
        let n_workers = 8;
        let cluster = StoreCluster::spawn(StoreConfig::throttled(n_workers, 200e6));
        let client = cluster.client();
        let n_files = 40u64;
        let len = 200_000;
        for id in 0..n_files {
            client
                .write(id, &payload(id, len), &[(id as usize) % n_workers])
                .unwrap();
        }
        // Skewed accesses.
        for id in 0..n_files {
            let reps = if id < 4 { 60 } else { 1 };
            for _ in 0..reps {
                let _ = client.read(id).unwrap();
            }
        }
        let (ids, plan, _) = cluster.master().plan_rebalance(
            n_workers,
            200e6,
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            7,
        );

        let t0 = std::time::Instant::now();
        run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
        let par = t0.elapsed().as_secs_f64();

        // Fresh identical cluster for the sequential run.
        let cluster2 = StoreCluster::spawn(StoreConfig::throttled(n_workers, 200e6));
        let client2 = cluster2.client();
        for id in 0..n_files {
            client2
                .write(id, &payload(id, len), &[(id as usize) % n_workers])
                .unwrap();
        }
        for id in 0..n_files {
            let reps = if id < 4 { 60 } else { 1 };
            for _ in 0..reps {
                let _ = client2.read(id).unwrap();
            }
        }
        let (ids2, plan2, _) = cluster2.master().plan_rebalance(
            n_workers,
            200e6,
            8.0,
            &spcache_core::tuner::TunerConfig::default(),
            7,
        );
        let t1 = std::time::Instant::now();
        run_sequential(&plan2, &ids2, cluster2.master().as_ref(), cluster2.transport().as_ref())
            .unwrap();
        let seq = t1.elapsed().as_secs_f64();

        assert!(
            seq > par * 2.0,
            "sequential {seq}s should be much slower than parallel {par}s"
        );
    }
}

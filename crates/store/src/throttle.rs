//! Token-bucket bandwidth throttling.
//!
//! Workers emulate a NIC of a configured bandwidth: before replying with
//! `b` bytes, the worker sleeps until the bucket has accumulated `b`
//! tokens. This is what turns the in-process store into a believable
//! cluster — parallel partition reads genuinely overlap their "transfers"
//! across worker threads, while one worker serving two clients halves
//! each one's throughput.

use std::time::{Duration, Instant};

/// A token bucket paying out `rate` bytes per second.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    /// Time at which all previously granted tokens are paid off.
    paid_until: Instant,
}

impl TokenBucket {
    /// A bucket with the given rate in bytes/s; `f64::INFINITY` disables
    /// throttling.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rate.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        TokenBucket {
            rate,
            paid_until: Instant::now(),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Blocks until `bytes` of bandwidth have been "transferred".
    ///
    /// Consecutive calls serialize: the NIC streams one partition at a
    /// time (matching the FIFO queue of the analytic model).
    pub fn consume(&mut self, bytes: usize) {
        if self.rate.is_infinite() {
            return;
        }
        let cost = Duration::from_secs_f64(bytes as f64 / self.rate);
        let now = Instant::now();
        let start = if self.paid_until > now {
            self.paid_until
        } else {
            now
        };
        self.paid_until = start + cost;
        let wait = self.paid_until.saturating_duration_since(now);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_rate_never_sleeps() {
        let mut tb = TokenBucket::new(f64::INFINITY);
        let t0 = Instant::now();
        tb.consume(usize::MAX / 2);
        assert!(t0.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn rate_is_enforced() {
        // 10 MB/s, transfer 2 MB → ~200 ms.
        let mut tb = TokenBucket::new(10e6);
        let t0 = Instant::now();
        tb.consume(2_000_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!((0.18..0.4).contains(&dt), "took {dt}s, expected ~0.2s");
    }

    #[test]
    fn consecutive_transfers_serialize() {
        // Two 1 MB transfers at 10 MB/s → ~200 ms total.
        let mut tb = TokenBucket::new(10e6);
        let t0 = Instant::now();
        tb.consume(1_000_000);
        tb.consume(1_000_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.18, "took {dt}s, expected >= 0.2s");
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut tb = TokenBucket::new(1.0); // 1 byte/s
        let t0 = Instant::now();
        tb.consume(0);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0);
    }
}

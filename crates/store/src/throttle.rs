//! Token-bucket bandwidth throttling and the two-class NIC scheduler.
//!
//! Workers emulate a NIC of a configured bandwidth: before replying with
//! `b` bytes, the worker sleeps until the bucket has accumulated `b`
//! tokens. This is what turns the in-process store into a believable
//! cluster — parallel partition reads genuinely overlap their "transfers"
//! across worker threads, while one worker serving two clients halves
//! each one's throughput.
//!
//! On top of the raw bucket sits [`NicScheduler`], the §4.4-derived
//! two-class scheduler (DESIGN.md §4.13): *foreground* traffic (client
//! reads and writes) pays only the total-rate bucket, while *background*
//! traffic (recovery sweeps, repartition pushes, spill writebacks and
//! refills) additionally pays a bucket capped at
//! `background_fraction × rate`. Both constraints apply simultaneously —
//! the wait ends when the slower of the two buckets has paid out — so
//! background streams can never take more than their fraction of the
//! NIC, and a supervisor sweep cannot starve foreground Zipf traffic.
//!
//! Waits are deadline-aware: [`TokenBucket::consume_within`] and
//! [`NicScheduler::consume_within`] *refuse* (without charging the
//! buckets) a transfer whose projected completion would overrun the
//! caller's deadline, instead of sleeping through it. Workers use this
//! to bound every emulated transfer by the executor deadline, so a
//! throttled push can no longer outlive `executor_deadline`.

use std::time::{Duration, Instant};

/// Which class of traffic a transfer belongs to (see [`NicScheduler`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Client-facing data path: reads and writes.
    Foreground,
    /// Maintenance byte streams: recovery sweeps, repartition pushes,
    /// spill writebacks, refills of evicted partitions.
    Background,
}

/// A token bucket paying out `rate` bytes per second.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    /// Time at which all previously granted tokens are paid off.
    paid_until: Instant,
}

impl TokenBucket {
    /// A bucket with the given rate in bytes/s; `f64::INFINITY` disables
    /// throttling.
    ///
    /// # Panics
    ///
    /// Panics on non-positive rate.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        TokenBucket {
            rate,
            paid_until: Instant::now(),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The instant a `bytes`-sized transfer would finish if granted
    /// `now`, without charging the bucket.
    fn projected_finish(&self, bytes: usize, now: Instant) -> Instant {
        if self.rate.is_infinite() {
            return now;
        }
        let cost = Duration::from_secs_f64(bytes as f64 / self.rate);
        let start = if self.paid_until > now {
            self.paid_until
        } else {
            now
        };
        start + cost
    }

    /// Charges the bucket for `bytes` granted at `now` and returns the
    /// instant the transfer is paid off (the caller sleeps).
    fn charge(&mut self, bytes: usize, now: Instant) -> Instant {
        if self.rate.is_infinite() {
            return now;
        }
        self.paid_until = self.projected_finish(bytes, now);
        self.paid_until
    }

    /// Blocks until `bytes` of bandwidth have been "transferred".
    ///
    /// Consecutive calls serialize: the NIC streams one partition at a
    /// time (matching the FIFO queue of the analytic model).
    pub fn consume(&mut self, bytes: usize) {
        let now = Instant::now();
        let finish = self.charge(bytes, now);
        let wait = finish.saturating_duration_since(now);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Like [`TokenBucket::consume`], but refuses the transfer — leaving
    /// the bucket **uncharged** — when its projected completion lies
    /// beyond `deadline`. Returns whether the transfer was performed.
    ///
    /// This is the deadline-respecting wait: a throttled worker answers
    /// `Timeout` instead of sleeping past the executor deadline, and the
    /// unpaid tokens stay available for requests that can still make
    /// their deadlines.
    pub fn consume_within(&mut self, bytes: usize, deadline: Instant) -> bool {
        let now = Instant::now();
        if self.projected_finish(bytes, now) > deadline {
            return false;
        }
        let finish = self.charge(bytes, now);
        let wait = finish.saturating_duration_since(now);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        true
    }
}

/// The per-worker two-class NIC: one bucket at the full configured rate
/// that **all** traffic pays, plus (when `background_fraction < 1`) a
/// second bucket at `background_fraction × rate` that only background
/// traffic pays. Background transfers complete when the slower of the
/// two buckets has paid out, bounding the background share of the NIC
/// at the configured fraction while foreground traffic keeps the full
/// rate to itself.
#[derive(Debug)]
pub struct NicScheduler {
    total: TokenBucket,
    background: Option<TokenBucket>,
    fg_bytes: u64,
    bg_bytes: u64,
}

impl NicScheduler {
    /// A scheduler over a NIC of `rate` bytes/s where background
    /// traffic may use at most `background_fraction` of it.
    /// `rate = f64::INFINITY` disables throttling entirely;
    /// `background_fraction = 1.0` collapses to the single-bucket
    /// behaviour (background indistinguishable from foreground).
    ///
    /// # Panics
    ///
    /// Panics on non-positive rate or a fraction outside `(0, 1]`.
    pub fn new(rate: f64, background_fraction: f64) -> Self {
        assert!(
            background_fraction > 0.0 && background_fraction <= 1.0,
            "background fraction must be in (0, 1]"
        );
        let background = (background_fraction < 1.0 && rate.is_finite())
            .then(|| TokenBucket::new(rate * background_fraction));
        NicScheduler {
            total: TokenBucket::new(rate),
            background,
            fg_bytes: 0,
            bg_bytes: 0,
        }
    }

    /// The full NIC rate.
    pub fn rate(&self) -> f64 {
        self.total.rate()
    }

    /// `(foreground, background)` bytes transferred so far.
    pub fn class_bytes(&self) -> (u64, u64) {
        (self.fg_bytes, self.bg_bytes)
    }

    fn account(&mut self, bytes: usize, class: TrafficClass) {
        match class {
            TrafficClass::Foreground => self.fg_bytes += bytes as u64,
            TrafficClass::Background => self.bg_bytes += bytes as u64,
        }
    }

    /// The instant a transfer would finish, without charging anything.
    fn projected_finish(&self, bytes: usize, class: TrafficClass, now: Instant) -> Instant {
        let mut finish = self.total.projected_finish(bytes, now);
        if class == TrafficClass::Background {
            if let Some(bg) = &self.background {
                finish = finish.max(bg.projected_finish(bytes, now));
            }
        }
        finish
    }

    /// Charges every applicable bucket and returns the pay-off instant.
    fn charge(&mut self, bytes: usize, class: TrafficClass, now: Instant) -> Instant {
        let mut finish = self.total.charge(bytes, now);
        if class == TrafficClass::Background {
            if let Some(bg) = &mut self.background {
                finish = finish.max(bg.charge(bytes, now));
            }
        }
        self.account(bytes, class);
        finish
    }

    /// Blocks until `bytes` have been "transferred" under `class`.
    pub fn consume(&mut self, bytes: usize, class: TrafficClass) {
        let now = Instant::now();
        let finish = self.charge(bytes, class, now);
        let wait = finish.saturating_duration_since(now);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Deadline-aware transfer: refuses (charging nothing) when the
    /// projected completion would overrun `deadline`; otherwise performs
    /// the transfer and returns `true`.
    pub fn consume_within(
        &mut self,
        bytes: usize,
        class: TrafficClass,
        deadline: Instant,
    ) -> bool {
        let now = Instant::now();
        if self.projected_finish(bytes, class, now) > deadline {
            return false;
        }
        let finish = self.charge(bytes, class, now);
        let wait = finish.saturating_duration_since(now);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_rate_never_sleeps() {
        let mut tb = TokenBucket::new(f64::INFINITY);
        let t0 = Instant::now();
        tb.consume(usize::MAX / 2);
        assert!(t0.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn rate_is_enforced() {
        // 10 MB/s, transfer 2 MB → ~200 ms.
        let mut tb = TokenBucket::new(10e6);
        let t0 = Instant::now();
        tb.consume(2_000_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!((0.18..0.4).contains(&dt), "took {dt}s, expected ~0.2s");
    }

    #[test]
    fn consecutive_transfers_serialize() {
        // Two 1 MB transfers at 10 MB/s → ~200 ms total.
        let mut tb = TokenBucket::new(10e6);
        let t0 = Instant::now();
        tb.consume(1_000_000);
        tb.consume(1_000_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.18, "took {dt}s, expected >= 0.2s");
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut tb = TokenBucket::new(1.0); // 1 byte/s
        let t0 = Instant::now();
        tb.consume(0);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0);
    }

    #[test]
    fn consume_within_refuses_past_deadline_without_charging() {
        // 1 MB/s: a 1 MB transfer takes 1 s, far past a 50 ms deadline.
        let mut tb = TokenBucket::new(1e6);
        let t0 = Instant::now();
        assert!(!tb.consume_within(1_000_000, Instant::now() + Duration::from_millis(50)));
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "refusal must not sleep"
        );
        // The refused transfer left the bucket uncharged: a small
        // transfer that fits its own deadline still goes through now.
        assert!(tb.consume_within(10_000, Instant::now() + Duration::from_millis(500)));
    }

    #[test]
    fn consume_within_performs_transfers_that_fit() {
        let mut tb = TokenBucket::new(10e6);
        let t0 = Instant::now();
        assert!(tb.consume_within(1_000_000, Instant::now() + Duration::from_secs(1)));
        assert!(t0.elapsed().as_secs_f64() >= 0.08, "the transfer is still paced");
    }

    #[test]
    fn background_class_is_paced_to_its_fraction() {
        // 10 MB/s NIC, background capped at 25% = 2.5 MB/s:
        // 1 MB of background takes ~400 ms, not ~100 ms.
        let mut nic = NicScheduler::new(10e6, 0.25);
        let t0 = Instant::now();
        nic.consume(1_000_000, TrafficClass::Background);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.35, "background took {dt}s, expected ~0.4s");
        assert_eq!(nic.class_bytes(), (0, 1_000_000));
    }

    #[test]
    fn foreground_keeps_the_full_rate() {
        let mut nic = NicScheduler::new(10e6, 0.25);
        let t0 = Instant::now();
        nic.consume(1_000_000, TrafficClass::Foreground);
        let dt = t0.elapsed().as_secs_f64();
        assert!(
            (0.08..0.3).contains(&dt),
            "foreground took {dt}s, expected ~0.1s"
        );
        assert_eq!(nic.class_bytes(), (1_000_000, 0));
    }

    #[test]
    fn full_fraction_collapses_to_single_bucket() {
        let mut nic = NicScheduler::new(10e6, 1.0);
        let t0 = Instant::now();
        nic.consume(1_000_000, TrafficClass::Background);
        let dt = t0.elapsed().as_secs_f64();
        assert!(
            (0.08..0.3).contains(&dt),
            "fraction 1.0 background took {dt}s, expected the full rate"
        );
    }

    #[test]
    fn background_bytes_stay_under_the_fraction_over_a_window() {
        // Saturating background load for ~300 ms on a 10 MB/s NIC with a
        // 30% fraction must move ≈ 0.9 MB, never more than the fraction
        // plus one in-flight transfer.
        let mut nic = NicScheduler::new(10e6, 0.3);
        let chunk = 50_000usize;
        let t0 = Instant::now();
        let mut moved = 0u64;
        while t0.elapsed() < Duration::from_millis(300) {
            nic.consume(chunk, TrafficClass::Background);
            moved += chunk as u64;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let cap = 0.3 * 10e6 * elapsed + chunk as f64;
        assert!(
            (moved as f64) <= cap * 1.05,
            "background moved {moved} bytes in {elapsed}s, cap {cap}"
        );
    }

    #[test]
    fn scheduler_consume_within_respects_deadlines() {
        let mut nic = NicScheduler::new(1e6, 0.5);
        // 1 MB background at 0.5 MB/s = 2 s, refused under a 100 ms cap.
        let t0 = Instant::now();
        assert!(!nic.consume_within(
            1_000_000,
            TrafficClass::Background,
            Instant::now() + Duration::from_millis(100)
        ));
        assert!(t0.elapsed() < Duration::from_millis(80));
        // Nothing was charged or accounted.
        assert_eq!(nic.class_bytes(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_background_fraction_rejected() {
        let _ = NicScheduler::new(10e6, 0.0);
    }
}

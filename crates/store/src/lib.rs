#![warn(missing_docs)]

//! A real concurrent in-memory distributed cache — the repository's
//! "Alluxio" substitute.
//!
//! Where `spcache-cluster` *simulates* latency, this crate actually moves
//! bytes between threads, exercising the concurrent code paths the paper's
//! implementation (§6) describes:
//!
//! * [`worker::Worker`] — one OS thread per cache server, owning a byte
//!   store of partitions, a token-bucket NIC throttle and optional
//!   straggler injection,
//! * [`master::Master`] — the SP-Master: file metadata (partition count,
//!   server list), access counting for popularity tracking, and the
//!   Algorithm 1 tuning entry point,
//! * [`client::Client`] — the SP-Client: parallel fork-join partition
//!   reads over crossbeam channels with byte-exact reassembly, and
//!   (optionally split) writes,
//! * [`repartitioner::run_parallel`] — Algorithm 2's executors: each
//!   worker repartitions a disjoint set of files in parallel
//!   (vs [`repartitioner::run_sequential`], the strawman that collects
//!   every file at one node — Fig. 16's comparison),
//! * [`cluster::StoreCluster`] — wires it all together,
//! * [`fault`] — deterministic fault injection (scripted crashes, hangs,
//!   partition drops, lost replies) driving the robust read path:
//!   per-partition deadlines, bounded retry with under-store recovery,
//!   and hedged reads (EC-Cache late binding against the checkpoint
//!   tier, since a redundancy-free cache has no replica to race).

pub mod backing;
pub mod client;
pub mod cluster;
pub mod config;
pub mod fault;
pub mod master;
pub mod metalog;
pub mod online;
pub mod repartitioner;
pub mod rpc;
pub mod supervisor;
pub mod throttle;
pub mod transport;
pub mod worker;

pub use client::{Client, ScatteredFile};
pub use cluster::StoreCluster;
pub use config::{DegradedPolicy, HedgePolicy, RetryPolicy, StoreConfig, SupervisorConfig};
pub use fault::{FaultAction, FaultEvent, FaultLog, FaultPlan, FaultRecord};
pub use master::{Master, MetaService};
pub use metalog::{FileIntegrity, MasterImage, MetaLog, MetaOp};
pub use rpc::{Envelope, PartKey, Reply, Request, StoreError, WorkerStats, MASTER_ENDPOINT};
pub use supervisor::{Supervisor, SupervisorCore, SweepLog, SweepRecord};
pub use transport::{ChannelTransport, Transport};

//! Partition integrity: a hand-rolled CRC-64 **tree** checksum.
//!
//! SP-Cache is redundancy-free, so a flipped bit in a cached partition
//! would otherwise be served as truth. This crate turns corruption into
//! an *erasure*: every partition carries a 64-bit checksum computed once
//! at write/split time; workers re-verify on load and spill reload,
//! clients on receive, and a mismatch surfaces as a typed error instead
//! of wrong bytes (see `spcache-store`).
//!
//! # Format
//!
//! The sum is a two-level tree over CRC-64/XZ (ECMA-182 polynomial,
//! reflected, init/xorout `!0`):
//!
//! 1. the partition is cut into [`LEAF_BYTES`] chunks and each chunk is
//!    CRC-64'd independently (leaf sums),
//! 2. the root is the CRC-64 of the little-endian concatenation of the
//!    leaf sums, with the partition's total length mixed in as a final
//!    8-byte word (so a truncated partition never collides with its
//!    zero-extended twin).
//!
//! The tree shape keeps the door open for chunk-parallel hashing and
//! incremental re-verification without changing the stored value; a
//! single-leaf partition still differs from the plain CRC because the
//! length word is always mixed in.
//!
//! The value `0` is reserved as the **unverified sentinel**: writers
//! that do not checksum stamp `0`, and verifiers skip such partitions.
//! [`sum`] never returns `0` for any input (it remaps a real zero root
//! to a fixed non-zero constant).

/// Leaf chunk size of the checksum tree (64 KiB).
pub const LEAF_BYTES: usize = 64 * 1024;

/// The unverified sentinel: a stored sum of `0` means "no checksum was
/// computed"; verification against it always passes.
pub const UNVERIFIED: u64 = 0;

/// CRC-64/XZ generator polynomial (ECMA-182), reflected form.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// The 256-entry CRC table, built once on first use.
fn table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// Plain CRC-64/XZ of `bytes` — the leaf primitive of the tree.
pub fn crc64(bytes: &[u8]) -> u64 {
    let t = table();
    let mut crc = !0u64;
    for &b in bytes {
        crc = t[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The tree checksum of one partition. Never returns [`UNVERIFIED`].
pub fn sum(bytes: &[u8]) -> u64 {
    let mut root = Vec::with_capacity((bytes.len() / LEAF_BYTES + 2) * 8);
    for leaf in bytes.chunks(LEAF_BYTES) {
        root.extend_from_slice(&crc64(leaf).to_le_bytes());
    }
    root.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    match crc64(&root) {
        UNVERIFIED => 0x5350_4341_4348_4531, // "SPCACHE1": zero root remapped
        s => s,
    }
}

/// Whether `bytes` matches a stored sum. A stored [`UNVERIFIED`]
/// sentinel always verifies — the partition was never checksummed.
pub fn verify(bytes: &[u8], stored: u64) -> bool {
    stored == UNVERIFIED || sum(bytes) == stored
}

/// Sums for a slice of partitions (the write/split-time batch helper).
pub fn sums<B: AsRef<[u8]>>(parts: &[B]) -> Vec<u64> {
    parts.iter().map(|p| sum(p.as_ref())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value from the ECMA-182 reveng catalogue.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn sum_is_deterministic_and_nonzero() {
        for len in [0usize, 1, 63, 64, 1000, LEAF_BYTES, LEAF_BYTES + 1, 3 * LEAF_BYTES + 7] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let s = sum(&data);
            assert_ne!(s, UNVERIFIED, "len {len} produced the sentinel");
            assert_eq!(s, sum(&data));
            assert!(verify(&data, s));
        }
    }

    #[test]
    fn any_single_bitflip_is_detected() {
        let data: Vec<u8> = (0..2 * LEAF_BYTES + 100).map(|i| (i * 7 % 256) as u8).collect();
        let clean = sum(&data);
        // Flip one bit at a spread of positions, including leaf
        // boundaries and the tail.
        for &pos in &[0, 1, LEAF_BYTES - 1, LEAF_BYTES, 2 * LEAF_BYTES, data.len() - 1] {
            let mut dirty = data.clone();
            dirty[pos] ^= 0x40;
            assert_ne!(sum(&dirty), clean, "flip at {pos} not detected");
            assert!(!verify(&dirty, clean));
        }
    }

    #[test]
    fn length_extension_does_not_collide() {
        // A partition and its zero-extended twin must differ even though
        // the extra leaf is all zeros.
        let a = vec![9u8; 100];
        let mut b = a.clone();
        b.push(0);
        assert_ne!(sum(&a), sum(&b));
        // Empty vs one zero byte, the degenerate pair.
        assert_ne!(sum(&[]), sum(&[0]));
    }

    #[test]
    fn unverified_sentinel_always_passes() {
        assert!(verify(b"anything at all", UNVERIFIED));
        assert!(verify(b"", UNVERIFIED));
    }

    #[test]
    fn batch_sums_match_singles() {
        let parts = [b"alpha".as_slice(), b"beta".as_slice(), b"".as_slice()];
        assert_eq!(sums(&parts), vec![sum(b"alpha"), sum(b"beta"), sum(b"")]);
    }
}

//! Deterministic time-ordered event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders events
//! by time and breaks ties by insertion sequence, guaranteeing that two runs
//! with identical inputs pop events in exactly the same order. Event
//! payloads are an arbitrary type `E`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and for
        // equal times the lowest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of `(SimTime, E)` events.
///
/// # Examples
///
/// ```
/// use spcache_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "later");
/// q.push(SimTime::from_secs(1.0), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`. Events pushed at the same time pop in
    /// push order (FIFO among ties).
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains events in time order while `pred(time)` holds, applying `f`.
    ///
    /// This is the main simulation loop helper: run everything scheduled up
    /// to a horizon.
    pub fn drain_while<P, F>(&mut self, mut pred: P, mut f: F)
    where
        P: FnMut(SimTime) -> bool,
        F: FnMut(SimTime, E, &mut Self),
    {
        while let Some(t) = self.peek_time() {
            if !pred(t) {
                break;
            }
            let (t, ev) = self.pop().expect("peeked event must pop");
            f(t, ev, self);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(SimTime::from_secs(t), t as i32);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn drain_while_respects_horizon() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_secs(i as f64), i);
        }
        let mut seen = Vec::new();
        q.drain_while(
            |t| t.as_secs() < 5.0,
            |_, ev, _| {
                seen.push(ev);
            },
        );
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn drain_while_can_reschedule() {
        // A handler that spawns a follow-up event inside the horizon.
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0u32);
        let mut count = 0;
        q.drain_while(
            |t| t.as_secs() < 10.0,
            |t, ev, q| {
                count += 1;
                if ev < 3 {
                    q.push(t + 1.0, ev + 1);
                }
            },
        );
        assert_eq!(count, 4); // 0,1,2,3
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2.5), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.5)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(2.5));
        assert_eq!(q.peek_time(), None);
    }
}

//! Deterministic pseudo-random number generation.
//!
//! Experiments must be exactly reproducible across machines and `rand`
//! releases, so the kernel ships its own generator: **xoshiro256\*\***
//! (Blackman & Vigna, 2018), seeded through SplitMix64. It implements
//! [`rand::RngCore`], so all of `rand`'s adapters and the workload crate's
//! samplers work on top of it.
//!
//! The generator is also *splittable* via [`Xoshiro256StarStar::split`]
//! (implemented with the canonical `jump()` polynomial), which lets each
//! simulated client/server own an independent deterministic stream.

use std::convert::Infallible;

use rand::rand_core::TryRng;
use rand::SeedableRng;

/// xoshiro256** — a small, fast, high-quality 256-bit PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256StarStar {
    /// Seeds the generator from a single `u64` via SplitMix64, per the
    /// reference implementation's recommendation.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // The all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Advances `self` by 2^128 steps and returns a generator at the *old*
    /// position. The two streams are guaranteed non-overlapping for 2^128
    /// draws — effectively independent.
    pub fn split(&mut self) -> Self {
        let child = self.clone();
        self.jump();
        child
    }

    /// The canonical xoshiro256 `jump()`: equivalent to 2^128 `next_u64`
    /// calls.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_9759_90cc_bd6a,
            0x3914_3b8a_2c9d_2f0c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &j in &JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.advance();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// A uniformly distributed `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.advance() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The core xoshiro256** state transition, returning the next `u64`.
    #[inline]
    fn advance(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

// In rand 0.10, implementors provide `TryRng<Error = Infallible>`; the
// infallible `Rng` trait is then supplied by a blanket impl.
impl TryRng for Xoshiro256StarStar {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.advance() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.advance())
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.advance().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.advance().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(b);
        }
        if s == [0; 4] {
            return Xoshiro256StarStar::seed(0);
        }
        Xoshiro256StarStar { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256StarStar::seed(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reference_vector() {
        // Reference output of xoshiro256** with state {1, 2, 3, 4}
        // (from the public reference implementation).
        // First four outputs verified by hand-executing the state
        // transition: out_n = rotl(5*s1, 7) * 9.
        let mut rng = Xoshiro256StarStar { s: [1, 2, 3, 4] };
        let expected: [u64; 4] = [11520, 0, 1509978240, 1215971899390074240];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256StarStar::seed(42);
        let mut b = Xoshiro256StarStar::seed(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed(1);
        let mut b = Xoshiro256StarStar::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_disjoint_prefixes() {
        let mut parent = Xoshiro256StarStar::seed(7);
        let mut child = parent.split();
        // Child reproduces the original stream; parent jumped far away.
        let mut original = Xoshiro256StarStar::seed(7);
        for _ in 0..100 {
            assert_eq!(child.next_u64(), original.next_u64());
        }
        let mut collisions = 0;
        for _ in 0..100 {
            if parent.next_u64() == child.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_matches_next_u64() {
        let mut a = Xoshiro256StarStar::seed(5);
        let mut b = Xoshiro256StarStar::seed(5);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[0..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..20], &w2[..4]);
    }

    #[test]
    fn seedable_rng_roundtrip() {
        let seed = [7u8; 32];
        let mut a = Xoshiro256StarStar::from_seed(seed);
        let mut b = Xoshiro256StarStar::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}

//! Analytic single-server FIFO queue.
//!
//! For an *open-loop* latency simulation (arrivals do not depend on
//! completions), a single-server FIFO queue is fully described by the time
//! at which the server next becomes idle. Feeding arrivals in time order,
//! each job's start is `max(arrival, busy_until)` and its finish is
//! `start + service`; the sojourn time `finish - arrival` is exactly the
//! M/G/1-FIFO waiting + service time the SP-Cache analysis models.
//!
//! This avoids a per-job event pair on the heap and makes the cluster
//! simulator roughly an order of magnitude faster, per the "avoid work"
//! guidance of the perf book.

use crate::time::SimTime;

/// Outcome of enqueuing one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// When service began (>= arrival).
    pub start: SimTime,
    /// When service completed.
    pub finish: SimTime,
    /// Time spent waiting before service began.
    pub wait: f64,
}

/// A work-conserving single-server FIFO queue.
///
/// Jobs **must** be offered in non-decreasing arrival order; this is
/// asserted in debug builds.
///
/// # Examples
///
/// ```
/// use spcache_sim::{FifoQueue, SimTime};
///
/// let mut q = FifoQueue::new();
/// let a = q.enqueue(SimTime::from_secs(0.0), 2.0);
/// let b = q.enqueue(SimTime::from_secs(1.0), 2.0);
/// assert_eq!(a.finish.as_secs(), 2.0);
/// assert_eq!(b.start.as_secs(), 2.0); // waited behind job a
/// assert_eq!(b.wait, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct FifoQueue {
    busy_until: SimTime,
    last_arrival: SimTime,
    /// Total service time accepted (for utilization accounting).
    busy_time: f64,
    /// Number of jobs served.
    jobs: u64,
}

impl Default for FifoQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoQueue {
    /// An idle queue starting at t = 0.
    pub fn new() -> Self {
        FifoQueue {
            busy_until: SimTime::ZERO,
            last_arrival: SimTime::from_secs(f64::NEG_INFINITY),
            busy_time: 0.0,
            jobs: 0,
        }
    }

    /// Offers a job arriving at `arrival` with the given `service` time
    /// (seconds) and returns its start/finish times.
    ///
    /// # Panics
    ///
    /// Debug-panics if arrivals go backwards in time or `service` is
    /// negative/NaN.
    pub fn enqueue(&mut self, arrival: SimTime, service: f64) -> Served {
        debug_assert!(
            arrival >= self.last_arrival,
            "FIFO arrivals must be offered in time order"
        );
        debug_assert!(service >= 0.0 && !service.is_nan(), "invalid service time");
        self.last_arrival = arrival;

        let start = arrival.max(self.busy_until);
        let finish = start + service;
        self.busy_until = finish;
        self.busy_time += service;
        self.jobs += 1;
        Served {
            start,
            finish,
            wait: start - arrival,
        }
    }

    /// The time at which the server next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queueing delay a job arriving at `t` would currently experience.
    pub fn backlog_at(&self, t: SimTime) -> f64 {
        (self.busy_until - t).max(0.0)
    }

    /// Total service time accepted so far.
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Number of jobs served so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Empirical utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.busy_time / horizon).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut q = FifoQueue::new();
        let s = q.enqueue(SimTime::from_secs(3.0), 1.0);
        assert_eq!(s.start.as_secs(), 3.0);
        assert_eq!(s.finish.as_secs(), 4.0);
        assert_eq!(s.wait, 0.0);
    }

    #[test]
    fn backlog_accumulates() {
        let mut q = FifoQueue::new();
        q.enqueue(SimTime::ZERO, 5.0);
        let s = q.enqueue(SimTime::from_secs(1.0), 1.0);
        assert_eq!(s.start.as_secs(), 5.0);
        assert_eq!(s.wait, 4.0);
        assert_eq!(s.finish.as_secs(), 6.0);
    }

    #[test]
    fn queue_drains_when_idle() {
        let mut q = FifoQueue::new();
        q.enqueue(SimTime::ZERO, 1.0);
        // Arrives long after the first job finished: no waiting.
        let s = q.enqueue(SimTime::from_secs(10.0), 1.0);
        assert_eq!(s.wait, 0.0);
        assert_eq!(s.finish.as_secs(), 11.0);
    }

    #[test]
    fn utilization_accounting() {
        let mut q = FifoQueue::new();
        q.enqueue(SimTime::ZERO, 2.0);
        q.enqueue(SimTime::from_secs(5.0), 3.0);
        assert_eq!(q.busy_time(), 5.0);
        assert_eq!(q.jobs(), 2);
        assert!((q.utilization(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(q.utilization(1.0), 1.0); // clamped
        assert_eq!(q.utilization(0.0), 0.0);
    }

    #[test]
    fn backlog_at_reports_remaining_work() {
        let mut q = FifoQueue::new();
        q.enqueue(SimTime::ZERO, 4.0);
        assert_eq!(q.backlog_at(SimTime::from_secs(1.0)), 3.0);
        assert_eq!(q.backlog_at(SimTime::from_secs(9.0)), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn out_of_order_arrivals_panic() {
        let mut q = FifoQueue::new();
        q.enqueue(SimTime::from_secs(2.0), 1.0);
        q.enqueue(SimTime::from_secs(1.0), 1.0);
    }

    #[test]
    fn zero_service_is_instant() {
        let mut q = FifoQueue::new();
        let s = q.enqueue(SimTime::from_secs(1.0), 0.0);
        assert_eq!(s.start, s.finish);
    }
}

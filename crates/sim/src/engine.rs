//! A classic event-driven single-server queue, used to **cross-validate**
//! the analytic [`crate::FifoQueue`] shortcut.
//!
//! The cluster simulator feeds arrivals in global time order, which lets
//! it replace per-job begin/end events with the O(1) `busy_until` update
//! of `FifoQueue`. That equivalence is an invariant worth guarding, so
//! this module keeps the textbook event-driven implementation around and
//! the tests drive both with identical inputs and assert *exact*
//! agreement.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Events of the single-server queue.
#[derive(Debug, Clone, Copy, PartialEq)]
enum QueueEvent {
    /// Job `id` arrives (service time attached).
    Arrival { id: usize, service: f64 },
    /// The job in service completes.
    Departure { id: usize },
}

/// Per-job measurements from the event-driven run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// Arrival time.
    pub arrival: SimTime,
    /// Service start.
    pub start: SimTime,
    /// Completion.
    pub finish: SimTime,
}

/// Runs an event-driven single-server FIFO queue over `(arrival, service)`
/// pairs (arrivals must be non-decreasing) and returns per-job records.
///
/// # Panics
///
/// Panics on out-of-order arrivals or negative service times.
pub fn run_fifo_event_driven(jobs: &[(f64, f64)]) -> Vec<JobRecord> {
    let mut queue: EventQueue<QueueEvent> = EventQueue::with_capacity(jobs.len() * 2);
    let mut records: Vec<Option<JobRecord>> = vec![None; jobs.len()];
    let mut waiting: std::collections::VecDeque<(usize, f64)> = Default::default();
    let mut in_service: Option<usize> = None;

    let mut prev = f64::NEG_INFINITY;
    for (id, &(arrival, service)) in jobs.iter().enumerate() {
        assert!(arrival >= prev, "arrivals must be time-ordered");
        assert!(service >= 0.0, "negative service time");
        prev = arrival;
        queue.push(SimTime::from_secs(arrival), QueueEvent::Arrival { id, service });
    }

    while let Some((now, ev)) = queue.pop() {
        match ev {
            QueueEvent::Arrival { id, service } => {
                records[id] = Some(JobRecord {
                    arrival: now,
                    start: now, // overwritten when service actually begins
                    finish: now,
                });
                if in_service.is_none() {
                    in_service = Some(id);
                    let rec = records[id].as_mut().expect("just inserted");
                    rec.start = now;
                    rec.finish = now + service;
                    queue.push(now + service, QueueEvent::Departure { id });
                } else {
                    waiting.push_back((id, service));
                }
            }
            QueueEvent::Departure { id } => {
                debug_assert_eq!(in_service, Some(id));
                in_service = None;
                if let Some((next, service)) = waiting.pop_front() {
                    in_service = Some(next);
                    let rec = records[next].as_mut().expect("arrived earlier");
                    rec.start = now;
                    rec.finish = now + service;
                    queue.push(now + service, QueueEvent::Departure { id: next });
                }
            }
        }
    }

    records
        .into_iter()
        .map(|r| r.expect("every job processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::FifoQueue;
    use crate::rng::Xoshiro256StarStar;

    /// Deterministic pseudo-random job streams.
    fn job_stream(n: usize, seed: u64, rate: f64, mean_service: f64) -> Vec<(f64, f64)> {
        let mut rng = Xoshiro256StarStar::seed(seed);
        let mut t = 0.0;
        (0..n)
            .map(|_| {
                t += -(1.0 - rng.next_f64()).ln() / rate;
                let s = -(1.0 - rng.next_f64()).ln() * mean_service;
                (t, s)
            })
            .collect()
    }

    #[test]
    fn event_driven_matches_analytic_exactly() {
        for seed in 0..5 {
            let jobs = job_stream(2_000, seed, 10.0, 0.08);
            let records = run_fifo_event_driven(&jobs);
            let mut q = FifoQueue::new();
            for (rec, &(arrival, service)) in records.iter().zip(&jobs) {
                let served = q.enqueue(SimTime::from_secs(arrival), service);
                assert_eq!(rec.start, served.start, "seed {seed}");
                assert_eq!(rec.finish, served.finish, "seed {seed}");
            }
        }
    }

    #[test]
    fn mm1_mean_sojourn_matches_theory() {
        // M/M/1 with rho = 0.8: E[T] = 1/(mu - lambda).
        let lambda = 8.0;
        let mu = 10.0;
        let jobs = job_stream(200_000, 42, lambda, 1.0 / mu);
        let records = run_fifo_event_driven(&jobs);
        let mean: f64 = records
            .iter()
            .map(|r| r.finish - r.arrival)
            .sum::<f64>()
            / records.len() as f64;
        let theory = 1.0 / (mu - lambda);
        assert!(
            (mean - theory).abs() / theory < 0.05,
            "mean sojourn {mean} vs M/M/1 theory {theory}"
        );
    }

    #[test]
    fn fifo_order_is_preserved() {
        let jobs = vec![(0.0, 5.0), (1.0, 0.1), (2.0, 0.1)];
        let records = run_fifo_event_driven(&jobs);
        // Despite shorter service, later arrivals finish later (FIFO).
        assert!(records[0].finish < records[1].finish);
        assert!(records[1].finish < records[2].finish);
        assert_eq!(records[1].start.as_secs(), 5.0);
    }

    #[test]
    fn idle_periods_are_skipped() {
        let jobs = vec![(0.0, 1.0), (100.0, 1.0)];
        let records = run_fifo_event_driven(&jobs);
        assert_eq!(records[1].start.as_secs(), 100.0);
        assert_eq!(records[1].finish.as_secs(), 101.0);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(run_fifo_event_driven(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let _ = run_fifo_event_driven(&[(2.0, 1.0), (1.0, 1.0)]);
    }
}

#![warn(missing_docs)]

//! Discrete-event simulation kernel for the SP-Cache reproduction.
//!
//! This crate provides the small, deterministic substrate on which the
//! cluster-cache simulator (`spcache-cluster`) is built:
//!
//! * [`SimTime`] — a totally-ordered simulated clock in seconds,
//! * [`EventQueue`] — a deterministic time-ordered event heap (ties broken
//!   by insertion order so runs are exactly reproducible),
//! * [`FifoQueue`] — an analytic single-server FIFO queue that turns an
//!   (arrival time, service time) pair into (start, finish) times, which is
//!   all an open-loop M/G/1 latency simulation needs,
//! * [`rng::Xoshiro256StarStar`] — a from-scratch, seedable, splittable PRNG
//!   implementing [`rand::RngCore`] so every experiment is reproducible
//!   independent of the `rand` crate's internal algorithms.
//!
//! The kernel is intentionally free of any caching semantics; it knows about
//! time, events, queues and randomness only.

pub mod engine;
pub mod event;
pub mod queue;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use queue::FifoQueue;
pub use rng::Xoshiro256StarStar;
pub use time::SimTime;

//! Simulated time.
//!
//! [`SimTime`] wraps an `f64` number of seconds since the start of the
//! simulation. The wrapper provides a total order (NaN is rejected at
//! construction) so times can live in ordered containers such as the event
//! heap.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// `SimTime` is `Copy`, totally ordered and never NaN. Negative times are
/// permitted (useful for "warm-up" periods scheduled before t = 0) but most
/// simulations start at [`SimTime::ZERO`].
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation origin, t = 0 s.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN — a NaN clock would silently corrupt the
    /// event heap ordering.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: construction rejects NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + 1.5;
        assert_eq!(t.as_secs(), 1.5);
        let mut u = t;
        u += 0.5;
        assert_eq!(u.as_secs(), 2.0);
        assert!((u - t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_times_allowed() {
        let t = SimTime::from_secs(-3.0);
        assert!(t < SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(1.25)), "1.250s");
        assert_eq!(format!("{:?}", SimTime::from_secs(0.5)), "0.500000s");
    }
}

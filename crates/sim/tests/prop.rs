//! Property-based tests of the simulation kernel: the analytic FIFO
//! shortcut must agree with the textbook event-driven queue on arbitrary
//! job streams, and the RNG/event-heap invariants must hold.

use proptest::prelude::*;

use spcache_sim::engine::run_fifo_event_driven;
use spcache_sim::{EventQueue, FifoQueue, SimTime, Xoshiro256StarStar};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Analytic FIFO and event-driven FIFO agree exactly on arbitrary
    /// (gap, service) streams.
    #[test]
    fn fifo_implementations_agree(
        jobs in proptest::collection::vec((0.0f64..5.0, 0.0f64..5.0), 0..200),
    ) {
        // Gaps → absolute arrival times.
        let mut t = 0.0;
        let jobs: Vec<(f64, f64)> = jobs
            .into_iter()
            .map(|(gap, service)| {
                t += gap;
                (t, service)
            })
            .collect();
        let records = run_fifo_event_driven(&jobs);
        let mut q = FifoQueue::new();
        for (rec, &(arrival, service)) in records.iter().zip(&jobs) {
            let served = q.enqueue(SimTime::from_secs(arrival), service);
            prop_assert_eq!(rec.start, served.start);
            prop_assert_eq!(rec.finish, served.finish);
        }
    }

    /// FIFO sojourn times are non-negative; completions are ordered.
    #[test]
    fn fifo_completions_ordered(
        jobs in proptest::collection::vec((0.0f64..2.0, 0.0f64..2.0), 1..100),
    ) {
        let mut t = 0.0;
        let mut q = FifoQueue::new();
        let mut prev_finish = f64::NEG_INFINITY;
        for (gap, service) in jobs {
            t += gap;
            let served = q.enqueue(SimTime::from_secs(t), service);
            prop_assert!(served.wait >= 0.0);
            prop_assert!(served.finish.as_secs() >= served.start.as_secs());
            prop_assert!(served.finish.as_secs() >= prev_finish, "FIFO order violated");
            prev_finish = served.finish.as_secs();
        }
    }

    /// The event heap pops in time order with FIFO tie-breaking.
    #[test]
    fn event_heap_ordering(times in proptest::collection::vec(0.0f64..100.0, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut last_seq_at_time = 0usize;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t.as_secs() >= last_time);
            if t.as_secs() == last_time {
                prop_assert!(i > last_seq_at_time, "ties must pop FIFO");
            }
            last_time = t.as_secs();
            last_seq_at_time = i;
        }
    }

    /// RNG streams from different seeds are uncorrelated enough to never
    /// produce identical 8-draw prefixes, and f64 draws stay in [0, 1).
    #[test]
    fn rng_stream_properties(seed_a: u64, seed_b: u64) {
        let mut a = Xoshiro256StarStar::seed(seed_a);
        let mut b = Xoshiro256StarStar::seed(seed_b);
        let pa: Vec<f64> = (0..8).map(|_| a.next_f64()).collect();
        let pb: Vec<f64> = (0..8).map(|_| b.next_f64()).collect();
        for &x in pa.iter().chain(&pb) {
            prop_assert!((0.0..1.0).contains(&x));
        }
        if seed_a != seed_b {
            prop_assert_ne!(pa, pb, "distinct seeds produced identical prefixes");
        } else {
            prop_assert_eq!(pa, pb);
        }
    }

    /// split() produces a child that replays the parent's old stream and a
    /// parent that diverges from it.
    #[test]
    fn rng_split_semantics(seed: u64) {
        let mut parent = Xoshiro256StarStar::seed(seed);
        let mut replay = Xoshiro256StarStar::seed(seed);
        let mut child = parent.split();
        for _ in 0..32 {
            prop_assert_eq!(child.next_f64(), replay.next_f64());
        }
        // Parent moved 2^128 ahead: first draws must differ from replay's
        // continuation.
        let p: Vec<u64> = (0..4).map(|_| {
            use rand::Rng;
            parent.next_u64()
        }).collect();
        let r: Vec<u64> = (0..4).map(|_| {
            use rand::Rng;
            replay.next_u64()
        }).collect();
        prop_assert_ne!(p, r);
    }

    /// Queue utilization accounting is exact.
    #[test]
    fn utilization_accounting(
        jobs in proptest::collection::vec((0.1f64..1.0, 0.0f64..0.5), 1..50),
    ) {
        let mut q = FifoQueue::new();
        let mut t = 0.0;
        let mut total_service = 0.0;
        for (gap, service) in jobs {
            t += gap;
            total_service += service;
            q.enqueue(SimTime::from_secs(t), service);
        }
        prop_assert!((q.busy_time() - total_service).abs() < 1e-9);
        let horizon = q.busy_until().as_secs().max(t);
        prop_assert!(q.utilization(horizon) <= 1.0);
    }
}

//! `perf` — the reproducible data-path performance harness.
//!
//! ```text
//! cargo run -p spcache-bench --release --bin perf              # full grid
//! cargo run -p spcache-bench --release --bin perf -- --quick   # CI smoke grid
//! cargo run -p spcache-bench --release --bin perf -- --out BENCH_store.json
//! cargo run -p spcache-bench --release --bin perf -- --validate BENCH_store.json
//! ```
//!
//! Measures the real store's read/write paths (legacy copying join vs
//! the select-driven zero-copy join) over a `file size × k × NIC` grid
//! and writes a schema-stable `BENCH_store.json`. `--validate` checks an
//! existing report (required keys present, all metrics finite and
//! positive) and exits non-zero on violation — the CI bench-smoke step.

use std::process::ExitCode;

use spcache_bench::perf::{
    default_grid, machine_descriptor, report_to_json, run_grid, validate_report_json,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_store.json");
    let mut validate: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = path.clone(),
                    None => {
                        eprintln!("--out needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--validate" => {
                i += 1;
                match args.get(i) {
                    Some(path) => validate = Some(path.clone()),
                    None => {
                        eprintln!("--validate needs a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: perf [--quick] [--out PATH] [--validate PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Some(path) = validate {
        return match std::fs::read_to_string(&path) {
            Ok(json) => match validate_report_json(&json) {
                Ok(()) => {
                    println!("{path}: valid ({} bytes)", json.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let grid = default_grid(quick);
    let report = run_grid(&grid, quick);
    let json = report_to_json(&report, &machine_descriptor());
    if let Err(e) = validate_report_json(&json) {
        eprintln!("internal error: emitted report fails validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }

    println!("wrote {out}");
    println!();
    println!(
        "{:<28} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "point/variant", "ops/s", "MB/s", "p50 ms", "p95 ms", "p99 ms"
    );
    for p in &report.points {
        println!("{}", p.point.label());
        for v in &p.variants {
            println!(
                "  {:<26} {:>10.2} {:>10.1} {:>9.2} {:>9.2} {:>9.2}",
                v.variant, v.ops_per_sec, v.mbytes_per_sec, v.p50_ms, v.p95_ms, v.p99_ms
            );
        }
        println!(
            "  read speedup ×{:.2} (scattered) ×{:.2} (contiguous), write ×{:.2}",
            p.read_speedup_scattered, p.read_speedup_contiguous, p.write_speedup
        );
    }
    ExitCode::SUCCESS
}

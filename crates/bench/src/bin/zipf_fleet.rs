//! `zipf_fleet` — a standalone Zipf read fleet against the budgeted
//! store, for eyeballing eviction/reload behaviour and pacing outside
//! the JSON harness.
//!
//! ```text
//! zipf_fleet [--files N] [--file-kb KB | --file-bytes B] [--k K]
//!            [--workers N] [--reads N] [--budget-frac F]
//!            [--background-fraction F] [--bandwidth BYTES_PER_SEC]
//!            [--seed S] [--tcp] [--fleet-1m]
//! ```
//!
//! Writes `--files` files of `--file-kb` KB (or `--file-bytes` B)
//! split `--k` ways, then drives `--reads` Zipf(1.1)-sampled reads
//! through one client and prints throughput plus the fleet's
//! eviction/spill/reload counters. `--budget-frac F` caps each worker
//! at `F ×` its unbounded resident share (omit for an unbounded run);
//! `--tcp` runs the same fleet over real loopback sockets instead of
//! in-process channels.
//!
//! Seeding streams through [`Client::write_many`]: files are pushed in
//! chunks of a few thousand, each chunk one partition-put wave plus
//! **one** metadata round-trip — what makes a million-file corpus
//! registrable over TCP in seconds instead of a million register
//! calls. `--fleet-1m` is the smoke preset for exactly that: one
//! million 64-byte files, `k = 1`, over TCP.

use std::process::exit;
use std::time::Instant;

use bytes::Bytes;
use rand::SeedableRng;
use spcache_net::TcpCluster;
use spcache_sim::Xoshiro256StarStar;
use spcache_store::rpc::WorkerStats;
use spcache_store::{Client, StoreCluster, StoreConfig, StoreError};
use spcache_workload::zipf::ZipfSampler;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("zipf_fleet: bad value for {flag}: {v:?}");
            exit(2);
        }),
    }
}

/// The two transports behind one face: same client, same stats RPC.
enum Fleet {
    Channel(StoreCluster),
    Tcp(TcpCluster),
}

impl Fleet {
    fn client(&self) -> Client {
        match self {
            Fleet::Channel(c) => c.client(),
            Fleet::Tcp(c) => c.client(),
        }
    }

    fn worker_stats(&self) -> Result<Vec<WorkerStats>, StoreError> {
        match self {
            Fleet::Channel(c) => c.worker_stats(),
            Fleet::Tcp(c) => c.worker_stats(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fleet_1m = args.iter().any(|a| a == "--fleet-1m");
    let files: u64 = parse(&args, "--files", if fleet_1m { 1_000_000 } else { 24 });
    let workers: usize = parse(&args, "--workers", 4);
    let k: usize = parse(&args, "--k", if fleet_1m { 1 } else { 4 });
    let reads: usize = parse(&args, "--reads", 2000);
    let seed: u64 = parse(&args, "--seed", 42);
    let bandwidth: f64 = parse(&args, "--bandwidth", f64::INFINITY);
    let tcp = args.iter().any(|a| a == "--tcp") || fleet_1m;
    let file_len: usize = if flag_value(&args, "--file-bytes").is_some() {
        parse(&args, "--file-bytes", 64)
    } else if flag_value(&args, "--file-kb").is_some() {
        parse::<usize>(&args, "--file-kb", 1024) << 10
    } else if fleet_1m {
        64
    } else {
        1024 << 10
    };

    let mut cfg = if bandwidth.is_finite() {
        StoreConfig::throttled(workers, bandwidth)
    } else {
        StoreConfig::unthrottled(workers)
    };
    let budget = flag_value(&args, "--budget-frac").map(|v| {
        let frac: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("zipf_fleet: bad value for --budget-frac: {v:?}");
            exit(2);
        });
        if frac <= 0.0 || frac.is_nan() {
            eprintln!("zipf_fleet: --budget-frac must be positive, got {frac}");
            exit(2);
        }
        ((files as usize * file_len / workers) as f64 * frac).max(1.0) as usize
    });
    cfg = cfg.with_memory_budget(budget);
    if let Some(frac) = flag_value(&args, "--background-fraction") {
        let frac: f64 = frac.parse().unwrap_or_else(|_| {
            eprintln!("zipf_fleet: bad value for --background-fraction: {frac:?}");
            exit(2);
        });
        if !(frac > 0.0 && frac <= 1.0) {
            eprintln!("zipf_fleet: --background-fraction must be in (0, 1], got {frac}");
            exit(2);
        }
        cfg = cfg.with_background_fraction(frac);
    }

    let fleet = if tcp {
        Fleet::Tcp(TcpCluster::spawn(cfg))
    } else {
        Fleet::Channel(StoreCluster::spawn(cfg))
    };
    let client = fleet.client();
    let data = Bytes::from(
        (0..file_len)
            .map(|i| ((i * 31 + 7) % 256) as u8)
            .collect::<Vec<u8>>(),
    );
    // Stream the corpus in chunks: each chunk is one put wave + one
    // batched metadata registration, and every file shares the one
    // `data` allocation (Bytes clones are refcount bumps).
    const SEED_CHUNK: usize = 4096;
    let t_seed = Instant::now();
    let mut batch: Vec<(u64, Bytes, Vec<usize>)> = Vec::with_capacity(SEED_CHUNK);
    for id in 0..files {
        let servers: Vec<usize> = (0..k).map(|j| (id as usize + j) % workers).collect();
        batch.push((id, data.clone(), servers));
        if batch.len() == SEED_CHUNK || id + 1 == files {
            client.write_many(&batch).unwrap_or_else(|e| {
                eprintln!("zipf_fleet: seed chunk ending at file {id} failed: {e:?}");
                exit(1);
            });
            batch.clear();
        }
    }
    let seed_dt = t_seed.elapsed().as_secs_f64();

    println!(
        "zipf_fleet: {files} files x {file_len} B (k={k}) on {workers} workers, \
         budget {}, transport {}; seeded in {seed_dt:.2} s ({:.0} files/s)",
        match budget {
            Some(b) => format!("{b} B/worker"),
            None => "unbounded".to_string(),
        },
        if tcp { "tcp" } else { "channel" },
        files as f64 / seed_dt.max(1e-9),
    );

    let sampler = ZipfSampler::new(files as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut bytes = 0u64;
    let t0 = Instant::now();
    for i in 0..reads {
        let id = sampler.sample(&mut rng) as u64;
        match client.read_quiet(id) {
            Ok(buf) => bytes += buf.len() as u64,
            Err(e) => {
                eprintln!("zipf_fleet: read {i} of file {id} failed: {e:?}");
                exit(1);
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "reads {reads} in {dt:.3} s: {:.1} reads/s, {:.1} MB/s",
        reads as f64 / dt,
        bytes as f64 / dt / 1e6,
    );

    match fleet.worker_stats() {
        Ok(stats) => {
            let sum = |f: fn(&WorkerStats) -> u64| stats.iter().map(f).sum::<u64>();
            println!(
                "fleet: evictions {}, spilled {:.1} MB, reloaded {:.1} MB, background {:.1} MB",
                sum(|s| s.evictions),
                sum(|s| s.spilled_bytes) as f64 / 1e6,
                sum(|s| s.reloaded_bytes) as f64 / 1e6,
                sum(|s| s.bytes_background) as f64 / 1e6,
            );
            for (w, s) in stats.iter().enumerate() {
                println!(
                    "worker {w}: resident {:.1} MB ({} parts), evictions {}, \
                     reloaded {:.1} MB",
                    s.resident_bytes as f64 / 1e6,
                    s.resident_parts,
                    s.evictions,
                    s.reloaded_bytes as f64 / 1e6,
                );
            }
        }
        Err(e) => eprintln!("zipf_fleet: stats unavailable: {e:?}"),
    }
}

//! Regenerates the SP-Cache paper's tables and figures.
//!
//! Usage:
//!   experiments [--quick] <id>...   run specific experiments
//!   experiments [--quick] all       run everything in paper order
//!   experiments replay <file>       replay a plain-text workload spec
//!   experiments list                list experiment ids

use spcache_bench::experiments::{run, ALL};
use spcache_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if ids.is_empty() || ids == ["list"] {
        eprintln!("usage: experiments [--quick] <id>... | all | replay <file> | list");
        eprintln!("ids: {}", ALL.join(" "));
        std::process::exit(if ids == ["list"] { 0 } else { 2 });
    }

    if ids.first() == Some(&"replay") {
        let Some(path) = ids.get(1) else {
            eprintln!("usage: experiments replay <spec-file>");
            std::process::exit(2);
        };
        if let Err(e) = spcache_bench::experiments::replay::replay_spec_file(path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }

    let selected: Vec<&str> = if ids.contains(&"all") {
        ALL.to_vec()
    } else {
        ids
    };

    let t0 = std::time::Instant::now();
    for id in &selected {
        let started = std::time::Instant::now();
        if !run(id, scale) {
            eprintln!("unknown experiment id: {id} (try `experiments list`)");
            std::process::exit(2);
        }
        eprintln!("[{id} done in {:.1}s]", started.elapsed().as_secs_f64());
    }
    eprintln!(
        "\nall {} experiment(s) finished in {:.1}s",
        selected.len(),
        t0.elapsed().as_secs_f64()
    );
}

//! Regenerates the SP-Cache paper's tables and figures.
//!
//! Usage:
//!   experiments [--quick] <id>...   run specific experiments
//!   experiments [--quick] all       run everything in paper order
//!   experiments [--serial] ...      disable the multi-experiment pool
//!   experiments replay <file>       replay a plain-text workload spec
//!   experiments list                list experiment ids
//!
//! Multi-experiment runs execute on a small process pool (experiments are
//! independent, so wall time drops to roughly the longest experiment), but
//! stdout stays byte-identical to a serial run: each experiment's output is
//! captured and printed whole, in paper order, with its wall time.

use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use spcache_bench::experiments::{run, ALL};
use spcache_bench::Scale;

/// One captured child-experiment run.
struct ExpOutput {
    stdout: String,
    stderr: String,
    ok: bool,
    secs: f64,
}

/// Runs `selected` experiments as subprocesses of this same binary on a
/// bounded thread pool, printing each experiment's captured stdout in
/// paper order. Returns `None` when pooling is unavailable (no
/// `current_exe`, or a single CPU) so the caller falls back to serial;
/// otherwise `Some(all_succeeded)`.
fn run_pooled(selected: &[&str], quick: bool) -> Option<bool> {
    let exe = std::env::current_exe().ok()?;
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
        .min(selected.len());
    if jobs < 2 {
        return None;
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ExpOutput>>> =
        Mutex::new((0..selected.len()).map(|_| None).collect());
    let ready = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= selected.len() {
                    break;
                }
                let started = Instant::now();
                let mut cmd = Command::new(&exe);
                if quick {
                    cmd.arg("--quick");
                }
                let result = match cmd.arg(selected[i]).output() {
                    Ok(out) => ExpOutput {
                        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
                        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
                        ok: out.status.success(),
                        secs: started.elapsed().as_secs_f64(),
                    },
                    Err(e) => ExpOutput {
                        stdout: String::new(),
                        stderr: format!("failed to spawn child for {}: {e}\n", selected[i]),
                        ok: false,
                        secs: started.elapsed().as_secs_f64(),
                    },
                };
                let mut guard = slots.lock().unwrap();
                guard[i] = Some(result);
                ready.notify_all();
            });
        }

        // Print completed experiments strictly in paper order while the
        // pool keeps working ahead.
        let mut all_ok = true;
        for (i, id) in selected.iter().enumerate() {
            let mut guard = slots.lock().unwrap();
            while guard[i].is_none() {
                guard = ready.wait(guard).unwrap();
            }
            let result = guard[i].take().unwrap();
            drop(guard);
            print!("{}", result.stdout);
            if result.ok {
                eprintln!("[{id} done in {:.1}s]", result.secs);
            } else {
                all_ok = false;
                eprint!("{}", result.stderr);
                eprintln!("[{id} FAILED after {:.1}s]", result.secs);
            }
        }
        Some(all_ok)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let serial = args.iter().any(|a| a == "--serial");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if ids.is_empty() || ids == ["list"] {
        eprintln!(
            "usage: experiments [--quick] [--serial] <id>... | all | replay <file> | list"
        );
        eprintln!("ids: {}", ALL.join(" "));
        std::process::exit(if ids == ["list"] { 0 } else { 2 });
    }

    if ids.first() == Some(&"replay") {
        let Some(path) = ids.get(1) else {
            eprintln!("usage: experiments replay <spec-file>");
            std::process::exit(2);
        };
        if let Err(e) = spcache_bench::experiments::replay::replay_spec_file(path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }

    let selected: Vec<&str> = if ids.contains(&"all") {
        ALL.to_vec()
    } else {
        ids
    };

    // Unknown ids fail fast (before any work, pooled or not).
    for id in &selected {
        if !ALL.contains(id) {
            eprintln!("unknown experiment id: {id} (try `experiments list`)");
            std::process::exit(2);
        }
    }

    let t0 = Instant::now();
    // A single experiment runs in-process — this is also what each pool
    // subprocess executes, which terminates the recursion.
    let pooled = if selected.len() > 1 && !serial {
        run_pooled(&selected, quick)
    } else {
        None
    };
    match pooled {
        Some(true) => {}
        Some(false) => std::process::exit(1),
        None => {
            for id in &selected {
                let started = Instant::now();
                if !run(id, scale) {
                    eprintln!("unknown experiment id: {id} (try `experiments list`)");
                    std::process::exit(2);
                }
                eprintln!("[{id} done in {:.1}s]", started.elapsed().as_secs_f64());
            }
        }
    }
    eprintln!(
        "\nall {} experiment(s) finished in {:.1}s",
        selected.len(),
        t0.elapsed().as_secs_f64()
    );
}

//! Minimal aligned-table printer for experiment output.

use std::io::Write;

/// Prints a titled, column-aligned table to stdout (locked once, per the
/// perf-book guidance on repeated `println!`).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    write_table(&mut out, title, headers, rows).expect("stdout write failed");
}

/// Writes the table to any writer (testable core of [`print_table`]).
pub fn write_table<W: Write>(
    out: &mut W,
    title: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    // Column widths from headers and cells.
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }

    writeln!(out, "\n=== {title} ===")?;
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:>w$}  ", w = w));
    }
    writeln!(out, "{}", line.trim_end())?;
    let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    writeln!(out, "{}", "-".repeat(rule.min(120)))?;
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        writeln!(out, "{}", line.trim_end())?;
    }
    Ok(())
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let mut buf = Vec::new();
        write_table(
            &mut buf,
            "T",
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["100".into(), "2000".into()],
            ],
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("=== T ==="));
        assert!(s.contains("long-header"));
        // All data lines end without trailing spaces.
        for line in s.lines() {
            assert_eq!(line, line.trim_end());
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut buf = Vec::new();
        let _ = write_table(&mut buf, "T", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.4), "40.0%");
    }
}

//! One module per group of paper artifacts; each public function
//! regenerates one table or figure (see DESIGN.md §4 for the index).

pub mod analysis;
pub mod burst;
pub mod cache;
pub mod motivation;
pub mod online;
pub mod placement;
pub mod repartition;
pub mod replay;
pub mod sensitivity;
pub mod skew;
pub mod stragglers;
pub mod writes;

use crate::Scale;

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "fig1", "fig2", "table1", "fig3", "table2", "fig4", "fig5", "table3", "fig6", "fig8",
    "fig10", "fig11", "thm1", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "fig19", "fig20", "fig21", "fig22", "ext-online", "ext-placement", "ext-burst", "ext-skew", "ext-adaptive",
];

/// Dispatches one experiment by id; returns false for unknown ids.
pub fn run(id: &str, scale: Scale) -> bool {
    match id {
        "fig1" => motivation::fig1_yahoo_trace(scale),
        "fig2" => motivation::fig2_caching_benefit(scale),
        "table1" => motivation::table1_cv_caching(scale),
        "fig3" => motivation::fig3_replication_cost(scale),
        "table2" => motivation::table2_cv_replication(scale),
        "fig4" => motivation::fig4_decode_overhead(scale),
        "fig5" => motivation::fig5_simple_partition(scale),
        "table3" => motivation::table3_cv_simple_partition(scale),
        "fig6" => motivation::fig6_goodput(scale),
        "fig8" => analysis::fig8_bound_vs_measured(scale),
        "fig10" => analysis::fig10_config_time(scale),
        "fig11" => analysis::fig11_partition_sizes(scale),
        "thm1" => analysis::thm1_variance_ratio(scale),
        "fig12" => skew::fig12_load_distribution(scale),
        "fig13" => skew::fig13_latency_vs_rate(scale),
        "fig14" => skew::fig14_vs_chunking(scale),
        "fig15" => skew::fig15_compute_optimized(scale),
        "fig16" => repartition::fig16_repartition_time(scale),
        "fig17" => repartition::fig17_repartition_fraction(scale),
        "fig18" => repartition::fig18_repartition_balance(scale),
        "fig19" => stragglers::fig19_straggler_latency(scale),
        "fig20" => cache::fig20_hit_ratio(scale),
        "fig21" => cache::fig21_trace_driven(scale),
        "fig22" => writes::fig22_write_latency(scale),
        "ext-online" => online::ext_online_adjustment(scale),
        "ext-placement" => placement::ext_placement_ablation(scale),
        "ext-burst" => burst::ext_burst_reaction(scale),
        "ext-skew" => sensitivity::ext_skew_sensitivity(scale),
        "ext-adaptive" => sensitivity::ext_adaptive_ec(scale),
        _ => return false,
    }
    true
}

//! Repartition experiments: Figs. 16–18 (resilience to popularity shifts).

use rand::SeedableRng;
use spcache_core::file::FileSet;
use spcache_core::placement::random_partition_map;
use spcache_core::repartition::plan_repartition;
use spcache_core::tuner::{tune_scale_factor_with_rate, TunerConfig};
use spcache_metrics::LoadTracker;
use spcache_sim::Xoshiro256StarStar;
use spcache_store::repartitioner::{run_parallel, run_sequential};
use spcache_store::{StoreCluster, StoreConfig};
use spcache_workload::PopularityModel;

use crate::table::{f2, pct, print_table};
use crate::Scale;

/// Builds a store cluster holding `n_files` files laid out per the tuned
/// α for `pops`, then shifts popularity and returns everything needed to
/// plan the rebalance.
struct ShiftSetup {
    cluster: StoreCluster,
    ids: Vec<u64>,
    plan: spcache_core::repartition::RepartitionPlan,
}

/// File bytes in the *real-bytes* repartition experiments. The paper uses
/// 50 MB files on EC2; moving gigabytes between threads tells us nothing
/// extra, so we scale file size down and the NIC throttle down
/// proportionally — wall-clock ratios (the claim under test) are
/// preserved.
const STORE_FILE_BYTES: usize = 400_000;
const STORE_BANDWIDTH: f64 = 80e6;
const N_WORKERS: usize = 15;

fn shifted_setup(n_files: usize, seed: u64, scale: Scale) -> ShiftSetup {
    let file_bytes = scale.bytes(STORE_FILE_BYTES);
    let cluster = StoreCluster::spawn(
        StoreConfig::throttled(N_WORKERS, STORE_BANDWIDTH).with_seed(seed),
    );
    let client = cluster.client();
    let mut pops = PopularityModel::zipf(n_files, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);

    // Initial layout: tuned α on the initial popularity.
    let sizes = vec![file_bytes as f64; n_files];
    let files = FileSet::from_parts(&sizes, &pops.popularities());
    let tuned = tune_scale_factor_with_rate(
        &files,
        N_WORKERS,
        STORE_BANDWIDTH,
        8.0,
        &TunerConfig::default(),
    );
    let map = random_partition_map(&files, tuned.alpha, N_WORKERS, &mut rng);
    let payload: Vec<u8> = (0..file_bytes).map(|i| (i % 253) as u8).collect();
    for i in 0..n_files {
        client
            .write(i as u64, &payload, map.servers_of(i))
            .expect("seed write");
    }

    // Popularity shift: shuffle ranks, retune, replan.
    pops.shift(&mut rng);
    let shifted = FileSet::from_parts(&sizes, &pops.popularities());
    let tuned2 = tune_scale_factor_with_rate(
        &shifted,
        N_WORKERS,
        STORE_BANDWIDTH,
        8.0,
        &TunerConfig::default(),
    );
    let new_counts: Vec<usize> = shifted
        .partition_counts(tuned2.alpha)
        .into_iter()
        .map(|k| k.min(N_WORKERS))
        .collect();
    let plan = plan_repartition(&shifted, &map, &new_counts, &mut rng);
    let ids: Vec<u64> = (0..n_files as u64).collect();
    ShiftSetup { cluster, ids, plan }
}

/// Fig. 16 — parallel vs sequential repartition wall time.
pub fn fig16_repartition_time(scale: Scale) {
    let mut rows = Vec::new();
    for &n_files in &[100usize, 150, 200, 250, 300, 350] {
        // Parallel.
        let setup = shifted_setup(n_files, 16, scale);
        let t0 = std::time::Instant::now();
        run_parallel(
            &setup.plan,
            &setup.ids,
            setup.cluster.master().as_ref(),
            setup.cluster.transport().as_ref(),
        )
        .expect("parallel repartition");
        let par = t0.elapsed().as_secs_f64();

        // Sequential strawman on an identical fresh cluster.
        let setup = shifted_setup(n_files, 16, scale);
        let t0 = std::time::Instant::now();
        run_sequential(
            &setup.plan,
            &setup.ids,
            setup.cluster.master().as_ref(),
            setup.cluster.transport().as_ref(),
        )
        .expect("sequential repartition");
        let seq = t0.elapsed().as_secs_f64();

        rows.push(vec![
            n_files.to_string(),
            f2(par),
            f2(seq),
            format!("{:.0}x", seq / par.max(1e-9)),
        ]);
    }
    print_table(
        "Fig. 16 — repartition wall time, real bytes (paper: parallel < 3 s and flat; sequential ~319 s)",
        &["files", "parallel (s)", "sequential (s)", "speedup"],
        &rows,
    );
    println!(
        "(files scaled to {} KB with a {} MB/s NIC throttle; ratios preserved — DESIGN.md §2)",
        scale.bytes(STORE_FILE_BYTES) / 1000,
        STORE_BANDWIDTH / 1e6
    );
}

/// Fig. 17 — fraction of files repartitioned after a popularity shift.
pub fn fig17_repartition_fraction(scale: Scale) {
    let trials = scale.trials(10);
    let mut rows = Vec::new();
    for &n_files in &[100usize, 150, 200, 250, 300, 350] {
        let mut fractions = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut pops = PopularityModel::zipf(n_files, 1.1);
            let mut rng = Xoshiro256StarStar::seed_from_u64(17_000 + t as u64);
            let sizes = vec![50e6; n_files];
            let files = FileSet::from_parts(&sizes, &pops.popularities());
            let tuned =
                tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &TunerConfig::default());
            let map = random_partition_map(&files, tuned.alpha, 30, &mut rng);
            pops.shift(&mut rng);
            let shifted = FileSet::from_parts(&sizes, &pops.popularities());
            let tuned2 =
                tune_scale_factor_with_rate(&shifted, 30, 125e6, 8.0, &TunerConfig::default());
            let counts: Vec<usize> = shifted
                .partition_counts(tuned2.alpha)
                .into_iter()
                .map(|k| k.min(30))
                .collect();
            let plan = plan_repartition(&shifted, &map, &counts, &mut rng);
            fractions.push(plan.moved_fraction());
        }
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fractions.iter().cloned().fold(0.0f64, f64::max);
        rows.push(vec![n_files.to_string(), pct(mean), pct(min), pct(max)]);
    }
    print_table(
        "Fig. 17 — fraction of files repartitioned (paper: decreases with population)",
        &["files", "mean", "min", "max"],
        &rows,
    );
}

/// Fig. 18 — load balance after repartition: greedy (Algorithm 2) vs the
/// random placement a sequential full re-layout would use.
pub fn fig18_repartition_balance(_scale: Scale) {
    let n_files = 200;
    let mut pops = PopularityModel::zipf(n_files, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(18);
    let sizes = vec![50e6; n_files];
    let files = FileSet::from_parts(&sizes, &pops.popularities());
    let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &TunerConfig::default());
    let map = random_partition_map(&files, tuned.alpha, 30, &mut rng);

    pops.shift(&mut rng);
    let shifted = FileSet::from_parts(&sizes, &pops.popularities());
    let tuned2 = tune_scale_factor_with_rate(&shifted, 30, 125e6, 8.0, &TunerConfig::default());
    let counts: Vec<usize> = shifted
        .partition_counts(tuned2.alpha)
        .into_iter()
        .map(|k| k.min(30))
        .collect();

    // Greedy (Algorithm 2).
    let plan = plan_repartition(&shifted, &map, &counts, &mut rng);
    // Random full re-layout (what the sequential strawman produces).
    let random_map = random_partition_map(&shifted, tuned2.alpha, 30, &mut rng);

    let eta = |m: &spcache_core::partition::PartitionMap| {
        let mut lt = LoadTracker::new(30);
        for (i, meta) in shifted.iter() {
            let per = meta.load() / m.k_of(i) as f64;
            for &s in m.servers_of(i) {
                lt.add(s, per);
            }
        }
        lt.imbalance_factor()
    };

    let rows = vec![
        vec!["greedy (Algorithm 2)".to_string(), f2(eta(&plan.new_map))],
        vec!["random re-layout".to_string(), f2(eta(&random_map))],
        vec!["stale (pre-shift) layout".to_string(), f2(eta(&map))],
    ];
    print_table(
        "Fig. 18 — post-shift load balance (paper: greedy placement beats random)",
        &["placement", "imbalance factor η"],
        &rows,
    );
}

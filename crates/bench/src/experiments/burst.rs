//! Extension experiment (§8): short-term popularity bursts handled by
//! online partition adjustment.
//!
//! Periodic (12-hourly) repartition cannot help a file that turns hot
//! *now*. §8 proposes reacting online by splitting the file's existing
//! partitions in place. This experiment stages exactly that on the real
//! store: concurrent clients suddenly converge on one cold file, its
//! worker saturates, the online adjuster splits the file, and latency
//! recovers — with the adjustment itself costing a fraction of the file.

use std::time::Instant;

use rand::SeedableRng;
use spcache_core::online::plan_adjust;
use spcache_metrics::Summary;
use spcache_sim::Xoshiro256StarStar;
use spcache_store::online::execute_adjust;
use spcache_store::{StoreCluster, StoreConfig};
use spcache_workload::dist::uniform_usize;

use crate::table::{f2, print_table};
use crate::Scale;

const N_WORKERS: usize = 8;
const N_FILES: u64 = 24;
const N_CLIENTS: usize = 6;
const BANDWIDTH: f64 = 100e6;

/// Drives one phase with `N_CLIENTS` concurrent clients; 80% of reads go
/// to `hot` when set, else uniform. Returns per-read latency stats (ms).
fn drive(cluster: &StoreCluster, hot: Option<u64>, reads_per_client: usize, seed: u64) -> Summary {
    let summaries: Vec<Summary> = std::thread::scope(|s| {
        (0..N_CLIENTS)
            .map(|c| {
                let client = cluster.client();
                s.spawn(move || {
                    let mut rng = Xoshiro256StarStar::seed_from_u64(seed + c as u64);
                    let mut stats = Summary::new();
                    for _ in 0..reads_per_client {
                        let id = match hot {
                            Some(h) if uniform_usize(&mut rng, 10) < 8 => h,
                            _ => uniform_usize(&mut rng, N_FILES as usize) as u64,
                        };
                        let t0 = Instant::now();
                        client.read(id).expect("read");
                        stats.record(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    stats
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .collect()
    });
    let mut total = Summary::new();
    for s in &summaries {
        total.merge(s);
    }
    total
}

/// `ext-burst` — per-phase read latency around a popularity burst.
pub fn ext_burst_reaction(scale: Scale) {
    let file_bytes = scale.bytes(1_000_000);
    let cluster = StoreCluster::spawn(StoreConfig::throttled(N_WORKERS, BANDWIDTH));
    let client = cluster.client();
    let payload: Vec<u8> = (0..file_bytes).map(|i| (i % 251) as u8).collect();
    for id in 0..N_FILES {
        client
            .write(id, &payload, &[(id as usize) % N_WORKERS])
            .expect("seed write");
    }

    let burst_file: u64 = 7;
    let reads_per_client = (scale.requests(600) / N_CLIENTS).clamp(30, 120);

    // Phase 1: calm, uniform reads.
    let calm = drive(&cluster, None, reads_per_client, 1);

    // Phase 2: the burst hits file 7 while it is a single partition.
    let burst = drive(&cluster, Some(burst_file), reads_per_client, 2);

    // React: online-adjust just that file to 6 partitions.
    let (_, servers) = cluster.master().peek(burst_file).expect("meta");
    let served = cluster.served_bytes().expect("stats");
    let plan = plan_adjust(file_bytes as u64, &servers, 6, &served);
    let adjust_t0 = Instant::now();
    execute_adjust(burst_file, &plan, cluster.master().as_ref(), cluster.transport().as_ref())
        .expect("online adjust");
    let adjust_secs = adjust_t0.elapsed().as_secs_f64();

    // Phase 3: the burst continues against the split layout.
    let after = drive(&cluster, Some(burst_file), reads_per_client, 3);

    let rows = vec![
        vec!["calm (uniform reads)".into(), f2(calm.mean()), f2(calm.max())],
        vec![
            "burst, file unsplit".into(),
            f2(burst.mean()),
            f2(burst.max()),
        ],
        vec![
            "burst, after online split".into(),
            f2(after.mean()),
            f2(after.max()),
        ],
    ];
    print_table(
        "§8 extension — burst reaction via online adjustment (6 concurrent clients, read latency ms)",
        &["phase", "mean (ms)", "max (ms)"],
        &rows,
    );
    println!(
        "online split 1 → 6 took {:.1} ms and moved {:.2} MB ({:.0}% of the file); \
         burst mean recovered {:.1}x",
        adjust_secs * 1e3,
        plan.network_bytes() as f64 / 1e6,
        plan.network_bytes() as f64 / file_bytes as f64 * 100.0,
        burst.mean() / after.mean().max(1e-9),
    );
}

//! Cache-budget and trace-driven experiments: Figs. 20–21.

use rand::SeedableRng;
use spcache_baselines::{EcCache, SelectiveReplication};
use spcache_cluster::engine::simulate_reads;
use spcache_cluster::runner::ExperimentStats;
use spcache_cluster::{ClusterConfig, ReadWorkload};
use spcache_core::scheme::CachingScheme;
use spcache_core::tuner::TunerConfig;
use spcache_core::{FileSet, SpCache};
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::yahoo;
use spcache_workload::zipf::zipf_popularities;
use spcache_workload::StragglerModel;

use crate::table::{f2, pct, print_table};
use crate::Scale;

/// Fig. 20 — cache hit ratio under a throttled cache budget.
pub fn fig20_hit_ratio(scale: Scale) {
    let files = FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05));
    let base = ClusterConfig::ec2_default();
    let (sp, _) = SpCache::tuned(
        &files,
        base.n_servers,
        base.bandwidth,
        10.0,
        &TunerConfig::default(),
    );
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let n_req = scale.requests(20_000);
    let raw = files.total_bytes();
    let mut rows = Vec::new();
    // Budget as a fraction of the raw working set, split across servers.
    for &frac in &[0.3, 0.5, 0.7, 0.9, 1.1, 1.4] {
        let per_server = raw * frac / base.n_servers as f64;
        let cfg = base.clone().with_cache_capacity(per_server);
        let workload = ReadWorkload::poisson(&files, 10.0, n_req, 20);
        let hit = |s: &dyn CachingScheme| simulate_reads(s, &files, &workload, &cfg).hit_ratio;
        rows.push(vec![
            pct(frac),
            pct(hit(&sp)),
            pct(hit(&ec)),
            pct(hit(&sr)),
        ]);
    }
    print_table(
        "Fig. 20 — hit ratio vs cache budget (paper: SP highest, redundancy-free)",
        &["budget / working set", "SP hit", "EC hit", "SR hit"],
        &rows,
    );
}

/// Fig. 21 — trace-driven simulation: Yahoo sizes, bursty arrivals,
/// stragglers, throttled cache, 3× miss penalty.
pub fn fig21_trace_driven(scale: Scale) {
    let n_files = 3_000;
    let mut rng = Xoshiro256StarStar::seed_from_u64(21);
    // Yahoo sizes ordered so larger = more popular (§7.7). Sizes are
    // capped at the Fig. 1 hot-bucket scale (~600 MB); a single multi-GB
    // file would be an unstable M/G/1 class at any interesting rate.
    let sizes: Vec<f64> = yahoo::generate_trace_files(n_files, &mut rng)
        .into_iter()
        .map(|s| s.clamp(1e6, 600e6))
        .collect();
    let pops = zipf_popularities(n_files, 1.1);
    let files = FileSet::from_parts(&sizes, &pops);

    // Cache budget tight enough that redundancy costs hit ratio: the
    // population totals ~budget, so SP (redundancy-free) just fits while
    // EC (+40%) and SR (+~30% on the largest files) must evict.
    let total_bytes: f64 = files.total_bytes();
    let per_server_budget = total_bytes * 1.02 / 30.0;
    let cfg = ClusterConfig::ec2_default()
        .with_cache_capacity(per_server_budget)
        .with_stragglers(StragglerModel::bing(0.05));
    // Aggregate rate chosen so a perfectly balanced cluster runs at
    // ρ ≈ 0.55 — heavily loaded (like the paper's multi-second latencies)
    // but stable.
    let mean_req_bytes: f64 = files.iter().map(|(_, f)| f.popularity * f.size_bytes).sum();
    let rate = 0.55 * cfg.n_servers as f64 * cfg.bandwidth / mean_req_bytes;
    let tuner_cfg = TunerConfig {
        stragglers: StragglerModel::bing(0.05),
        ..TunerConfig::default()
    };
    let (sp, _) = SpCache::tuned(&files, cfg.n_servers, cfg.bandwidth, rate, &tuner_cfg);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();

    let n_req = scale.requests(30_000);
    let workload = ReadWorkload::bursty(&files, rate, 8.0, n_req, 777);

    let schemes: Vec<(&str, &dyn CachingScheme)> =
        vec![("SP-Cache", &sp), ("EC-Cache", &ec), ("Selective repl.", &sr)];
    let mut rows = Vec::new();
    let mut cdf_rows = Vec::new();
    for (name, scheme) in schemes {
        let res = simulate_reads(scheme, &files, &workload, &cfg);
        let stats = ExperimentStats::from_result(name.to_string(), rate, res.clone());
        rows.push(vec![
            name.to_string(),
            f2(stats.mean),
            f2(stats.p95),
            pct(stats.hit_ratio),
        ]);
        let mut lat = res.latencies;
        cdf_rows.push(vec![
            name.to_string(),
            f2(lat.percentile(25.0)),
            f2(lat.percentile(50.0)),
            f2(lat.percentile(75.0)),
            f2(lat.percentile(90.0)),
            f2(lat.percentile(99.0)),
        ]);
    }
    print_table(
        "Fig. 21 — trace-driven simulation (paper: means 3.8 / 6.0 / 44.1 s for SP / EC / SR)",
        &["scheme", "mean (s)", "p95 (s)", "hit ratio"],
        &rows,
    );
    print_table(
        "Fig. 21 — latency distribution (CDF quantiles, seconds)",
        &["scheme", "p25", "p50", "p75", "p90", "p99"],
        &cdf_rows,
    );
}

//! `replay <spec-file>` — run the scheme comparison on a user-supplied
//! plain-text workload (see `spcache_workload::spec` for the format).

use spcache_baselines::{EcCache, SelectiveReplication};
use spcache_cluster::engine::simulate_reads;
use spcache_cluster::runner::ExperimentStats;
use spcache_cluster::{ClusterConfig, ReadWorkload};
use spcache_core::scheme::CachingScheme;
use spcache_core::tuner::TunerConfig;
use spcache_core::SpCache;
use spcache_workload::spec::WorkloadSpec;

use crate::table::{f2, print_table};

/// Loads the spec at `path` and compares the three schemes on its trace.
///
/// Returns an error message suitable for the CLI on failure.
pub fn replay_spec_file(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec = WorkloadSpec::parse(&text).map_err(|e| format!("bad spec {path}: {e}"))?;
    if spec.requests.is_empty() {
        return Err(format!("{path} declares no `req` lines — nothing to replay"));
    }
    let (files, workload) = ReadWorkload::from_spec(&spec);
    let rate = workload.rate();
    println!(
        "replaying {path}: {} files ({:.2} GB), {} requests at {rate:.2} req/s",
        files.len(),
        files.total_bytes() / 1e9,
        workload.len(),
    );

    let cfg = ClusterConfig::ec2_default();
    let (sp, tuned) = SpCache::tuned(
        &files,
        cfg.n_servers,
        cfg.bandwidth,
        rate.max(0.1),
        &TunerConfig::default(),
    );
    println!("Algorithm 1 chose α = {:.3e} ({} iterations)", sp.alpha(), tuned.iterations);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();

    let schemes: Vec<&dyn CachingScheme> = vec![&sp, &ec, &sr];
    let rows: Vec<Vec<String>> = schemes
        .into_iter()
        .map(|s| {
            let res = simulate_reads(s, &files, &workload, &cfg);
            let stats = ExperimentStats::from_result(s.name(), rate, res);
            vec![
                stats.scheme,
                f2(stats.mean),
                f2(stats.p95),
                f2(stats.eta),
                f2(stats.layout_bytes / files.total_bytes()),
            ]
        })
        .collect();
    print_table(
        "replay — scheme comparison on the supplied trace",
        &["scheme", "mean (s)", "p95 (s)", "η", "cache/raw"],
        &rows,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_runs_on_a_generated_spec() {
        // Build a small spec on disk and replay it end-to-end.
        let mut spec = WorkloadSpec::default();
        for i in 0..20 {
            spec.files.push(spcache_workload::spec::FileSpec {
                size_bytes: 10e6,
                popularity: 1.0 / (i + 1) as f64,
            });
        }
        let mut t = 0.0;
        for i in 0..500 {
            t += 0.05;
            spec.requests.push((t, i % 20));
        }
        let dir = std::env::temp_dir().join("spcache-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.spec");
        std::fs::write(&path, spec.emit()).unwrap();
        replay_spec_file(path.to_str().unwrap()).unwrap();
    }

    #[test]
    fn replay_reports_missing_file() {
        let err = replay_spec_file("/nonexistent/spec").unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn replay_rejects_traceless_spec() {
        let dir = std::env::temp_dir().join("spcache-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.spec");
        std::fs::write(&path, "file 10 1\n").unwrap();
        let err = replay_spec_file(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("nothing to replay"));
    }
}

//! Extension experiment (§6.3/§9): placement policy ablation.
//!
//! The paper argues placement optimization is the wrong battleground:
//! hashing/round-robin schemes are popularity-agnostic, so they imbalance
//! whole-file caches no matter how evenly they spread *counts* — while
//! under selective partition every partition carries the same load and
//! even random placement balances. This experiment measures the expected
//! per-server load imbalance η for each placement policy, with and
//! without selective partition.

use rand::SeedableRng;
use spcache_core::partition::PartitionMap;
use spcache_core::placement::{random_partition_map, round_robin_partition_map, HashRing};
use spcache_core::tuner::{tune_scale_factor_with_rate, TunerConfig};
use spcache_core::FileSet;
use spcache_metrics::LoadTracker;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::zipf::zipf_popularities;

use crate::table::{f2, print_table};
use crate::Scale;

fn eta(files: &FileSet, map: &PartitionMap, n: usize) -> f64 {
    let mut lt = LoadTracker::new(n);
    for (i, meta) in files.iter() {
        let per = meta.load() / map.k_of(i) as f64;
        for &s in map.servers_of(i) {
            lt.add(s, per);
        }
    }
    lt.imbalance_factor()
}

/// `ext-placement` — η for {random, round-robin, consistent-hash} ×
/// {whole files, selective partition}.
pub fn ext_placement_ablation(scale: Scale) {
    let n = 30;
    let files = FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05));
    let tuned = tune_scale_factor_with_rate(&files, n, 100e6, 18.0, &TunerConfig::default());
    let ring = HashRing::new(n, 64);
    let trials = scale.trials(10) as u64;

    let mut rows = Vec::new();
    for &(label, alpha) in &[("whole files (α = 0)", 0.0), ("selective partition", tuned.alpha)]
    {
        // Random placement: average over seeds (it is random, after all).
        let mut eta_rand = 0.0;
        for seed in 0..trials {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            eta_rand += eta(&files, &random_partition_map(&files, alpha, n, &mut rng), n);
        }
        eta_rand /= trials as f64;
        let eta_rr = eta(&files, &round_robin_partition_map(&files, alpha, n), n);
        let eta_hash = eta(&files, &ring.partition_map(&files, alpha), n);
        rows.push(vec![
            label.to_string(),
            f2(eta_rand),
            f2(eta_rr),
            f2(eta_hash),
        ]);
    }
    print_table(
        "§6.3 ablation — imbalance factor η by placement policy (paper: \
         selective partition makes random placement sufficient)",
        &["layout", "random", "round-robin", "consistent-hash"],
        &rows,
    );
}

//! Extension experiment (§8): online partition adjustment vs Algorithm 2's
//! reassembly path.
//!
//! Not a paper figure — the paper sketches this as future work ("SP-Cache
//! can split and combine the existing partitions ... in a distributed
//! manner and incurs only a small amount of data transfer"). This
//! experiment quantifies that claim on the real store: bytes moved and
//! wall time for an online k → k' adjustment vs reassembling through a
//! repartitioner.

use spcache_core::online::plan_adjust;
use spcache_store::online::execute_adjust;
use spcache_store::{StoreCluster, StoreConfig};

use crate::table::{f2, print_table};
use crate::Scale;

/// `ext-online` — online split/combine vs full reassembly.
pub fn ext_online_adjustment(scale: Scale) {
    let n_workers = 12;
    let file_bytes = scale.bytes(4_000_000);
    let bandwidth = 120e6;
    let payload: Vec<u8> = (0..file_bytes).map(|i| (i % 251) as u8).collect();

    let mut rows = Vec::new();
    for &(old_k, new_k) in &[(1usize, 4usize), (4, 8), (8, 12), (8, 4), (12, 2), (6, 6)] {
        // Fresh throttled cluster holding the file at old_k.
        let cluster = StoreCluster::spawn(StoreConfig::throttled(n_workers, bandwidth));
        let client = cluster.client();
        let servers: Vec<usize> = (0..old_k).collect();
        client.write(1, &payload, &servers).expect("seed write");

        let plan = plan_adjust(file_bytes as u64, &servers, new_k, &vec![0.0; n_workers]);
        let served_before: f64 = cluster.served_bytes().expect("stats").iter().sum();
        let t0 = std::time::Instant::now();
        execute_adjust(1, &plan, cluster.master().as_ref(), cluster.transport().as_ref())
            .expect("online adjust");
        let online_time = t0.elapsed().as_secs_f64();
        let moved: f64 =
            cluster.served_bytes().expect("stats").iter().sum::<f64>() - served_before;
        assert_eq!(client.read_quiet(1).expect("read"), payload);

        // The reassembly alternative, estimated at the same bandwidth.
        let reassembly = plan.reassembly_bytes() as f64;
        rows.push(vec![
            format!("{old_k} → {new_k}"),
            f2(moved / 1e6),
            f2(plan.network_bytes() as f64 / 1e6),
            f2(reassembly / 1e6),
            f2(online_time * 1e3),
            f2(reassembly / bandwidth * 1e3),
        ]);
    }
    print_table(
        "§8 extension — online adjustment vs reassembly (per-file, MB and ms)",
        &[
            "k → k'",
            "bytes served (MB)",
            "planned net (MB)",
            "reassembly (MB)",
            "online time (ms)",
            "reassembly est (ms)",
        ],
        &rows,
    );
    println!(
        "(file {:.1} MB; 'bytes served' includes local pulls, 'planned net' only cross-server)",
        file_bytes as f64 / 1e6
    );
}

//! Motivation-section experiments: Figs. 1–6, Tables 1–3.

use rand::SeedableRng;
use spcache_baselines::{SelectiveReplication, SimplePartition};
use spcache_cluster::runner::compare_schemes;
use spcache_cluster::{ClusterConfig, GoodputModel};
use spcache_core::{FileSet, SpCache};
use spcache_ec::ReedSolomon;
use spcache_metrics::Samples;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::yahoo;
use spcache_workload::zipf::zipf_popularities;
use spcache_workload::StragglerModel;

use crate::table::{f2, f3, pct, print_table};
use crate::Scale;

/// The §2.2 motivation cluster: 30 m4.large nodes (0.8 Gbps), 50 files of
/// 40 MB, Zipf 1.1.
fn motivation_files() -> FileSet {
    FileSet::uniform_size(40e6, &zipf_popularities(50, 1.1))
}

fn motivation_cfg() -> ClusterConfig {
    ClusterConfig::ec2_default().with_bandwidth(100e6) // 0.8 Gbps
}

/// Fig. 1 — Yahoo! trace: access-count distribution and size-by-bucket.
pub fn fig1_yahoo_trace(scale: Scale) {
    let n = scale.requests(100_000);
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let files = yahoo::generate_files(n, &mut rng);
    let stats = yahoo::stats(&files);
    let labels = ["<10", "10-100", "100-1k", ">=1k"];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            vec![
                l.to_string(),
                pct(stats.count_fractions[i]),
                f2(stats.mean_sizes[i] / 1e6),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 — synthetic Yahoo! population (paper: ~78% cold, ~2% hot, hot 15-30x larger)",
        &["access count", "fraction of files", "mean size (MB)"],
        &rows,
    );
    let ratio = stats.mean_sizes[2] / stats.mean_sizes[0].max(1.0);
    println!("hot/cold size ratio: {:.1}x", ratio);
}

fn caching_comparison(scale: Scale) -> Vec<(f64, f64, f64, f64, f64)> {
    // (rate, mean cached, cv cached, mean disk, cv disk)
    let files = motivation_files();
    let whole = SpCache::with_alpha(0.0); // stock Alluxio: whole files
    let n_req = scale.requests(10_000);
    let mut out = Vec::new();
    for rate in [5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
        let cached = compare_schemes(&[&whole], &files, rate, n_req, &motivation_cfg());
        // "Without caching": files spilled to local disk (~60 MB/s reads).
        let disk_cfg = motivation_cfg().with_bandwidth(60e6);
        let disk = compare_schemes(&[&whole], &files, rate, n_req, &disk_cfg);
        out.push((
            rate,
            cached[0].mean,
            cached[0].cv,
            disk[0].mean,
            disk[0].cv,
        ));
    }
    out
}

/// Fig. 2 — mean read latency with vs without caching, rates 5–10.
pub fn fig2_caching_benefit(scale: Scale) {
    let data = caching_comparison(scale);
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|&(rate, mc, _, md, _)| {
            vec![
                format!("{rate:.0}"),
                f2(mc),
                f2(md),
                format!("{:.1}x", md / mc.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — caching benefit diminishes under load (paper: 5x at rate 5, irrelevant by 9+)",
        &["rate (req/s)", "mean w/ cache (s)", "mean w/o cache (s)", "speedup"],
        &rows,
    );
}

/// Table 1 — CV of read latencies with vs without caching.
pub fn table1_cv_caching(scale: Scale) {
    let data = caching_comparison(scale);
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|&(rate, _, cvc, _, cvd)| vec![format!("{rate:.0}"), f2(cvd), f2(cvc)])
        .collect();
    print_table(
        "Table 1 — CV of read latency (paper: consistently > 1 under skew)",
        &["rate", "CV w/o caching", "CV w/ caching"],
        &rows,
    );
}

fn replication_sweep(scale: Scale) -> Vec<(usize, f64, f64, f64)> {
    // (replicas, mean, cv, cache bytes ratio)
    let files = motivation_files();
    let n_req = scale.requests(10_000);
    let mut out = Vec::new();
    for replicas in 1..=5usize {
        let sr = SelectiveReplication::new(0.10, replicas);
        let stats = compare_schemes(&[&sr], &files, 6.0, n_req, &motivation_cfg());
        let ratio = stats[0].layout_bytes / files.total_bytes();
        out.push((replicas, stats[0].mean, stats[0].cv, ratio));
    }
    out
}

/// Fig. 3 — selective replication: latency vs memory cost, replicas 1–5.
pub fn fig3_replication_cost(scale: Scale) {
    let rows: Vec<Vec<String>> = replication_sweep(scale)
        .iter()
        .map(|&(r, mean, _, ratio)| {
            vec![r.to_string(), f2(mean), pct(ratio - 1.0)]
        })
        .collect();
    print_table(
        "Fig. 3 — replication: linear memory for sublinear latency (paper §3.1)",
        &["replicas (top 10%)", "mean latency (s)", "cache overhead"],
        &rows,
    );
}

/// Table 2 — CV vs replica count.
pub fn table2_cv_replication(scale: Scale) {
    let rows: Vec<Vec<String>> = replication_sweep(scale)
        .iter()
        .map(|&(r, _, cv, _)| vec![r.to_string(), f2(cv)])
        .collect();
    print_table(
        "Table 2 — CV of read latency vs replicas (paper: needs 4 replicas for CV < 1)",
        &["replicas", "CV"],
        &rows,
    );
}

/// Fig. 4 — EC-Cache decode overhead on real bytes, by file size.
pub fn fig4_decode_overhead(scale: Scale) {
    let rs = ReedSolomon::new(10, 14);
    let trials = scale.trials(20);
    let mut rows = Vec::new();
    for &mb in &[1usize, 10, 50, 100, 200] {
        let size = scale.bytes(mb * 1_000_000);
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let shards = rs.encode_bytes(&data);
        let mut overheads = Samples::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(mb as u64);
        for _ in 0..trials {
            // Lose two random shards (late binding reads k+1 of n; decode
            // reconstructs from whatever k arrived first).
            let mut partial: Vec<Option<Vec<u8>>> =
                shards.iter().cloned().map(Some).collect();
            let drop1 = spcache_workload::dist::uniform_usize(&mut rng, 14);
            let drop2 = (drop1 + 1 + spcache_workload::dist::uniform_usize(&mut rng, 13)) % 14;
            partial[drop1] = None;
            partial[drop2] = None;
            let t0 = std::time::Instant::now();
            let rec = rs.reconstruct_data(&mut partial).expect("decodable");
            let decode = t0.elapsed().as_secs_f64();
            assert_eq!(rec.len() % 10, 0);
            // Read latency model: shard transfers at 1 Gbps in parallel →
            // whole-file wire time ≈ size / 125 MB/s.
            let transfer = size as f64 / 125e6;
            overheads.record(decode / (decode + transfer));
        }
        let mut o = overheads;
        rows.push(vec![
            format!("{:.1} MB", size as f64 / 1e6),
            pct(o.percentile(5.0)),
            pct(o.percentile(25.0)),
            pct(o.percentile(50.0)),
            pct(o.percentile(75.0)),
            pct(o.percentile(95.0)),
        ]);
    }
    print_table(
        "Fig. 4 — decode overhead, real (10,14) RS codec (paper: >15% for files >= 100 MB)",
        &["file size", "p5", "p25", "p50", "p75", "p95"],
        &rows,
    );
}

fn simple_partition_sweep(scale: Scale) -> Vec<(usize, f64, f64, f64, f64)> {
    // (k, mean clean, cv clean, mean stragglers, cv stragglers)
    let files = motivation_files();
    let n_req = scale.requests(10_000);
    let mut out = Vec::new();
    for &k in &[1usize, 3, 9, 15, 21, 27] {
        let sp = SimplePartition::new(k);
        let clean = compare_schemes(&[&sp], &files, 10.0, n_req, &motivation_cfg());
        let strag_cfg = motivation_cfg().with_stragglers(StragglerModel::bing(0.05));
        let strag = compare_schemes(&[&sp], &files, 10.0, n_req, &strag_cfg);
        out.push((k, clean[0].mean, clean[0].cv, strag[0].mean, strag[0].cv));
    }
    out
}

/// Fig. 5 — simple partition: latency vs k, with and without stragglers.
pub fn fig5_simple_partition(scale: Scale) {
    let rows: Vec<Vec<String>> = simple_partition_sweep(scale)
        .iter()
        .map(|&(k, mc, _, ms, _)| vec![k.to_string(), f2(mc), f2(ms)])
        .collect();
    print_table(
        "Fig. 5 — simple partition at rate 10 (paper: 17-22x better than stock; U-shape past k=15; stragglers dominate at large k)",
        &["k", "mean w/o stragglers (s)", "mean w/ stragglers (s)"],
        &rows,
    );
}

/// Table 3 — CV for simple partition, with and without stragglers.
pub fn table3_cv_simple_partition(scale: Scale) {
    let rows: Vec<Vec<String>> = simple_partition_sweep(scale)
        .iter()
        .filter(|&&(k, ..)| k != 1)
        .map(|&(k, _, cvc, _, cvs)| vec![k.to_string(), f2(cvc), f2(cvs)])
        .collect();
    print_table(
        "Table 3 — CV of simple partition (paper: falls with k clean, rises with stragglers)",
        &["k", "CV w/o stragglers", "CV w/ stragglers"],
        &rows,
    );
}

/// Fig. 6 — normalized goodput vs partition count at 1 Gbps and 500 Mbps.
pub fn fig6_goodput(_scale: Scale) {
    let g1 = GoodputModel::gbps1();
    let g5 = GoodputModel::mbps500();
    let rows: Vec<Vec<String>> = [1usize, 5, 10, 20, 40, 60, 80, 100]
        .iter()
        .map(|&c| vec![c.to_string(), f3(g1.factor(c)), f3(g5.factor(c))])
        .collect();
    print_table(
        "Fig. 6 — normalized goodput vs #partitions (paper: -20% at 20, -40% at 100 on 1 Gbps)",
        &["connections", "1 Gbps", "500 Mbps"],
        &rows,
    );
}

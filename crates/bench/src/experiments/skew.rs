//! Skew-resilience experiments: Figs. 12–15.

use spcache_baselines::{CodingCostModel, EcCache, FixedChunking, SelectiveReplication};
use spcache_cluster::runner::{compare_schemes, latency_improvement_percent};
use spcache_cluster::ClusterConfig;
use spcache_core::tuner::TunerConfig;
use spcache_core::{FileSet, SpCache};
use spcache_workload::zipf::zipf_popularities;

use crate::table::{f2, print_table};
use crate::Scale;

/// The §7.3 setting: 30 r3.2xlarge servers (1 Gbps), 500 files of 100 MB,
/// Zipf 1.05.
fn skew_files() -> FileSet {
    FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05))
}

fn tuned_sp(files: &FileSet, cfg: &ClusterConfig, rate: f64) -> SpCache {
    let (sp, _) = SpCache::tuned(
        files,
        cfg.n_servers,
        cfg.bandwidth,
        rate,
        &TunerConfig::default(),
    );
    sp
}

/// Fig. 12 — per-server load distribution and imbalance factor η.
pub fn fig12_load_distribution(scale: Scale) {
    let files = skew_files();
    // Effective per-server bandwidth ~0.8 Gbps (the paper measured 1 Gbps
    // with iPerf; sustained goodput under concurrent flows is lower), which
    // is what puts rates 18-22 into the congestion regime of Fig. 13.
    let cfg = ClusterConfig::ec2_default().with_bandwidth(100e6);
    let rate = 18.0;
    let sp = tuned_sp(&files, &cfg, rate);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let n_req = scale.requests(15_000);
    let stats = compare_schemes(&[&sp, &ec, &sr], &files, rate, n_req, &cfg);
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.scheme.clone(),
                f2(s.eta),
                f2(s.layout_bytes / files.total_bytes()),
            ]
        })
        .collect();
    print_table(
        "Fig. 12 — load imbalance at rate 18 (paper: η = 0.18 SP, 0.44 EC, 1.18 SR)",
        &["scheme", "imbalance factor η", "cache bytes / raw"],
        &rows,
    );
}

/// Fig. 13 — mean and p95 latency vs request rate for the three schemes.
pub fn fig13_latency_vs_rate(scale: Scale) {
    let files = skew_files();
    // Effective per-server bandwidth ~0.8 Gbps (the paper measured 1 Gbps
    // with iPerf; sustained goodput under concurrent flows is lower), which
    // is what puts rates 18-22 into the congestion regime of Fig. 13.
    let cfg = ClusterConfig::ec2_default().with_bandwidth(100e6);
    let sp = tuned_sp(&files, &cfg, 18.0);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let n_req = scale.requests(15_000);
    let mut rows = Vec::new();
    for rate in [6.0, 10.0, 14.0, 18.0, 22.0] {
        let s = compare_schemes(&[&sp, &ec, &sr], &files, rate, n_req, &cfg);
        rows.push(vec![
            format!("{rate:.0}"),
            f2(s[0].mean),
            f2(s[1].mean),
            f2(s[2].mean),
            f2(s[0].p95),
            f2(s[1].p95),
            f2(s[2].p95),
            format!("{:.0}%", latency_improvement_percent(s[1].mean, s[0].mean)),
        ]);
    }
    print_table(
        "Fig. 13 — latency vs rate (paper: SP beats EC by 29-50% mean, 22-55% tail)",
        &[
            "rate", "SP mean", "EC mean", "SR mean", "SP p95", "EC p95", "SR p95",
            "mean gain vs EC",
        ],
        &rows,
    );
}

/// Fig. 14 — SP-Cache vs fixed-size chunking (4/8/16 MB).
pub fn fig14_vs_chunking(scale: Scale) {
    let files = skew_files();
    // Effective per-server bandwidth ~0.8 Gbps (the paper measured 1 Gbps
    // with iPerf; sustained goodput under concurrent flows is lower), which
    // is what puts rates 18-22 into the congestion regime of Fig. 13.
    let cfg = ClusterConfig::ec2_default().with_bandwidth(100e6);
    let sp = tuned_sp(&files, &cfg, 18.0);
    let c4 = FixedChunking::megabytes(4.0);
    let c8 = FixedChunking::megabytes(8.0);
    let c16 = FixedChunking::megabytes(16.0);
    let n_req = scale.requests(15_000);
    let mut rows = Vec::new();
    for rate in [6.0, 10.0, 14.0, 18.0, 22.0] {
        let s = compare_schemes(&[&sp, &c4, &c8, &c16], &files, rate, n_req, &cfg);
        rows.push(vec![
            format!("{rate:.0}"),
            f2(s[0].mean),
            f2(s[1].mean),
            f2(s[2].mean),
            f2(s[3].mean),
            f2(s[0].p95),
            f2(s[3].p95),
        ]);
    }
    print_table(
        "Fig. 14 — vs fixed chunking (paper: small chunks lose at low rate, 16 MB loses 2x at rate 22)",
        &["rate", "SP mean", "4MB mean", "8MB mean", "16MB mean", "SP p95", "16MB p95"],
        &rows,
    );
}

/// Fig. 15 — compute-optimized cache servers (c4.4xlarge: 1.4 Gbps,
/// faster decode).
pub fn fig15_compute_optimized(scale: Scale) {
    let files = skew_files();
    // c4.4xlarge: 40% more bandwidth than the r3 cluster's effective
    // 0.8 Gbps, i.e. ~1.1 Gbps effective; tuned for the peak rate.
    let cfg = ClusterConfig::ec2_default().with_bandwidth(140e6);
    let sp = tuned_sp(&files, &cfg, 22.0);
    let ec = EcCache::new(10, 14, CodingCostModel::compute_optimized());
    let sr = SelectiveReplication::paper_config();
    let n_req = scale.requests(15_000);
    let mut rows = Vec::new();
    for rate in [6.0, 14.0, 22.0] {
        let s = compare_schemes(&[&sp, &ec, &sr], &files, rate, n_req, &cfg);
        rows.push(vec![
            format!("{rate:.0}"),
            f2(s[0].mean),
            f2(s[1].mean),
            f2(s[2].mean),
            f2(s[0].p95),
            f2(s[1].p95),
            f2(s[2].p95),
        ]);
    }
    print_table(
        "Fig. 15 — compute-optimized servers (paper: SP still 39-47% ahead of EC; SP < 0.5s mean)",
        &["rate", "SP mean", "EC mean", "SR mean", "SP p95", "EC p95", "SR p95"],
        &rows,
    );
}

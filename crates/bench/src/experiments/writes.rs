//! Write-latency experiment: Fig. 22.

use spcache_baselines::{EcCache, FixedChunking, SelectiveReplication};
use spcache_cluster::engine::simulate_writes;
use spcache_cluster::ClusterConfig;
use spcache_core::scheme::CachingScheme;
use spcache_core::spcache::SpCacheSplitWrite;
use spcache_core::FileSet;

use crate::table::{f2, print_table};
use crate::Scale;

/// Fig. 22 — write latency vs file size for SP-Cache (split-on-write),
/// EC-Cache, selective replication and 4 MB chunking.
pub fn fig22_write_latency(scale: Scale) {
    let cfg = ClusterConfig::ec2_default();
    let trials = scale.trials(200);
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for &mb in &[10.0f64, 50.0, 100.0, 200.0, 500.0] {
        // One file of this size, maximally popular so split-write splits it
        // the way the §7.8 experiment pre-declares popularity.
        let files = FileSet::from_parts(&[mb * 1e6], &[1.0]);
        let alpha = 20.0 / files.max_load(); // hot: ~20 partitions
        let sp = SpCacheSplitWrite::new(alpha);
        let ec = EcCache::paper_config();
        let sr = SelectiveReplication::new(1.0, 4); // this file is top-10%-hot
        let ck = FixedChunking::megabytes(4.0);
        let writes: Vec<usize> = vec![0; trials];
        let schemes: [&dyn CachingScheme; 4] = [&sp, &ec, &sr, &ck];
        let mut row = vec![format!("{mb:.0} MB")];
        for (i, s) in schemes.iter().enumerate() {
            let lat = simulate_writes(*s, &files, &writes, &cfg);
            let mean = lat.mean();
            sums[i] += mean;
            row.push(f2(mean));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 22 — write latency by file size (paper: SP 1.77x faster than EC, 3.71x than SR, ~13% vs 4MB chunking)",
        &["file size", "SP-Cache", "EC-Cache", "Selective repl.", "4MB chunking"],
        &rows,
    );
    println!(
        "aggregate: EC/SP = {:.2}x, SR/SP = {:.2}x, chunk/SP = {:.2}x",
        sums[1] / sums[0],
        sums[2] / sums[0],
        sums[3] / sums[0]
    );
}

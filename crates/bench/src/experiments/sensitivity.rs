//! Extension experiments: skew sensitivity and the adaptive EC-Cache
//! variant the EC-Cache paper claims but never fully specified (§7.1).

use spcache_baselines::{AdaptiveEcCache, EcCache, SelectiveReplication};
use spcache_cluster::runner::compare_schemes;
use spcache_cluster::ClusterConfig;
use spcache_core::tuner::TunerConfig;
use spcache_core::{FileSet, SpCache};
use spcache_workload::zipf::zipf_popularities;

use crate::table::{f2, print_table};
use crate::Scale;

/// `ext-skew` — mean/p95 latency vs Zipf exponent at a fixed heavy rate.
///
/// The paper claims SP-Cache wins "in a broad range of settings"; this
/// sweep verifies the win is not an artifact of exponent 1.05.
pub fn ext_skew_sensitivity(scale: Scale) {
    let cfg = ClusterConfig::ec2_default().with_bandwidth(100e6);
    let n_req = scale.requests(12_000);
    let rate = 18.0;
    let mut rows = Vec::new();
    for &exp in &[0.7, 0.9, 1.05, 1.2, 1.4] {
        let files = FileSet::uniform_size(100e6, &zipf_popularities(500, exp));
        let (sp, _) = SpCache::tuned(
            &files,
            cfg.n_servers,
            cfg.bandwidth,
            rate,
            &TunerConfig::default(),
        );
        let ec = EcCache::paper_config();
        let sr = SelectiveReplication::paper_config();
        let s = compare_schemes(&[&sp, &ec, &sr], &files, rate, n_req, &cfg);
        rows.push(vec![
            format!("{exp:.2}"),
            f2(s[0].mean),
            f2(s[1].mean),
            f2(s[2].mean),
            f2(s[0].eta),
            f2(s[1].eta),
            f2(s[2].eta),
        ]);
    }
    print_table(
        "extension — skew sensitivity at rate 18 (SP must win across exponents)",
        &[
            "zipf exp", "SP mean", "EC mean", "SR mean", "SP η", "EC η", "SR η",
        ],
        &rows,
    );
}

/// `ext-adaptive` — uniform (10,14) EC-Cache vs the claimed adaptive
/// 15%-budget variant vs SP-Cache.
pub fn ext_adaptive_ec(scale: Scale) {
    let cfg = ClusterConfig::ec2_default().with_bandwidth(100e6);
    let files = FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05));
    let (sp, _) = SpCache::tuned(
        &files,
        cfg.n_servers,
        cfg.bandwidth,
        18.0,
        &TunerConfig::default(),
    );
    let ec = EcCache::paper_config();
    let adaptive = AdaptiveEcCache::paper_claim();
    let n_req = scale.requests(12_000);
    let mut rows = Vec::new();
    for rate in [6.0, 14.0, 22.0] {
        let s = compare_schemes(&[&sp, &adaptive, &ec], &files, rate, n_req, &cfg);
        rows.push(vec![
            format!("{rate:.0}"),
            f2(s[0].mean),
            f2(s[1].mean),
            f2(s[2].mean),
            f2(s[0].layout_bytes / files.total_bytes()),
            f2(s[1].layout_bytes / files.total_bytes()),
            f2(s[2].layout_bytes / files.total_bytes()),
        ]);
    }
    print_table(
        "extension — adaptive EC-Cache (15% budget, the EC-Cache paper's claim) vs uniform (10,14) vs SP",
        &[
            "rate",
            "SP mean",
            "adaptive mean",
            "uniform mean",
            "SP mem",
            "adaptive mem",
            "uniform mem",
        ],
        &rows,
    );
}

//! Analysis-section experiments: the latency bound (Fig. 8), tuner cost
//! (Fig. 10), partition-size profile (Fig. 11) and Theorem 1.

use rand::SeedableRng;
use spcache_cluster::runner::compare_schemes;
use spcache_cluster::ClusterConfig;
use spcache_core::forkjoin::{system_latency_bound, BoundConfig};
use spcache_core::placement::random_partition_map;
use spcache_core::tuner::{tune_scale_factor_with_rate, TunerConfig};
use spcache_core::variance::{ec_variance, sp_variance, sp_variance_monte_carlo, theorem1_ratio};
use spcache_core::{FileSet, SpCache};
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::zipf::zipf_popularities;

use crate::table::{f2, f3, pct, print_table};
use crate::Scale;

/// Fig. 8 — the derived upper bound vs measured mean latency across α.
///
/// Paper setup: 31-node cluster, 300 files of 100 MB, rate 8. The bound
/// and the simulation should share an elbow.
pub fn fig8_bound_vs_measured(scale: Scale) {
    let files = FileSet::uniform_size(100e6, &zipf_popularities(300, 1.05));
    let n_servers = 30;
    let bw = 125e6;
    let rate = 8.0;
    let rates = files.request_rates(rate);
    let cfg = ClusterConfig::ec2_default();
    let bound_cfg = BoundConfig::with_client_bandwidth(bw);
    let n_req = scale.requests(10_000);

    // α such that the hottest file has k partitions, k swept over a grid.
    let mut rows = Vec::new();
    for &k_hot in &[2usize, 4, 7, 10, 15, 22, 30] {
        let alpha = k_hot as f64 / files.max_load();
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let map = random_partition_map(&files, alpha, n_servers, &mut rng);
        let bound = system_latency_bound(&files, &rates, &map, &vec![bw; n_servers], &bound_cfg);
        let scheme = SpCache::with_alpha(alpha);
        let sim = compare_schemes(&[&scheme], &files, rate, n_req, &cfg);
        rows.push(vec![
            format!("{:.3e}", alpha),
            k_hot.to_string(),
            if bound.is_finite() {
                f3(bound)
            } else {
                "inf".into()
            },
            f3(sim[0].mean),
        ]);
    }
    print_table(
        "Fig. 8 — upper bound vs measured mean latency across α (paper: elbow alignment)",
        &["alpha", "k(hottest)", "bound (s)", "measured mean (s)"],
        &rows,
    );
}

/// Fig. 10 — Algorithm 1 configuration time vs number of files.
///
/// Paper: linear growth, <= 90 s at 10k files with CVXPY; the golden-
/// section solver is far faster in absolute terms, but the *linear shape*
/// is the claim under test.
pub fn fig10_config_time(scale: Scale) {
    let cfg = TunerConfig::default();
    let trials = scale.trials(5);
    let mut rows = Vec::new();
    for &n_files in &[1_000usize, 2_500, 5_000, 7_500, 10_000] {
        let files = FileSet::uniform_size(100e6, &zipf_popularities(n_files, 1.05));
        let mut times = Vec::with_capacity(trials);
        for _ in 0..trials {
            let t0 = std::time::Instant::now();
            let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &cfg);
            std::hint::black_box(tuned.alpha);
            times.push(t0.elapsed().as_secs_f64());
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        // Iteration counts vary across workloads, so also report the
        // per-bound-evaluation cost — the quantity that is linear in the
        // file count.
        let iters = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &cfg).iterations;
        rows.push(vec![
            n_files.to_string(),
            format!("{:.1}", mean * 1e3),
            format!("{:.1}", min * 1e3),
            format!("{:.1}", max * 1e3),
            iters.to_string(),
            format!("{:.2}", mean * 1e3 / iters as f64),
        ]);
    }
    print_table(
        "Fig. 10 — Algorithm 1 runtime vs #files (paper: linear, <= 90 s at 10k via CVXPY)",
        &["files", "mean (ms)", "min (ms)", "max (ms)", "iterations", "ms / evaluation"],
        &rows,
    );
}

/// Fig. 11 — optimal partition sizes by popularity rank.
///
/// Paper: with 100 files of 100 MB, only the top ~30% are split at all.
pub fn fig11_partition_sizes(_scale: Scale) {
    let files = FileSet::uniform_size(100e6, &zipf_popularities(100, 1.05));
    let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &TunerConfig::default());
    let ks: Vec<usize> = files
        .partition_counts(tuned.alpha)
        .into_iter()
        .map(|k| k.min(30))
        .collect();
    let rows: Vec<Vec<String>> = [0usize, 4, 9, 19, 29, 39, 59, 79, 99]
        .iter()
        .map(|&rank| {
            vec![
                (rank + 1).to_string(),
                ks[rank].to_string(),
                f2(100.0 / ks[rank] as f64),
            ]
        })
        .collect();
    print_table(
        "Fig. 11 — tuned partition counts by popularity rank (paper: only hot head split)",
        &["popularity rank", "k", "partition size (MB)"],
        &rows,
    );
    let split = ks.iter().filter(|&&k| k > 1).count();
    println!(
        "alpha = {:.3e}; {split}/100 files split ({}%)",
        tuned.alpha, split
    );
}

/// Theorem 1 — load-variance ratio: analytic, Monte-Carlo and asymptotic.
pub fn thm1_variance_ratio(scale: Scale) {
    let trials = scale.requests(60_000);
    let mut rows = Vec::new();
    for &(n_files, exponent) in &[(200usize, 0.8f64), (200, 1.1), (500, 1.1), (500, 1.4)] {
        let files = FileSet::uniform_size(100e6, &zipf_popularities(n_files, exponent));
        let n_servers = 100;
        let alpha = 40.0 / files.max_load();
        let v_sp = sp_variance(&files, alpha, n_servers);
        let v_ec = ec_variance(&files, 10, n_servers);
        let mut rng = Xoshiro256StarStar::seed_from_u64(n_files as u64);
        let mc = sp_variance_monte_carlo(&files, alpha, n_servers, trials, &mut rng);
        let asym = theorem1_ratio(&files, alpha, 10) * 11.0 / 10.0;
        rows.push(vec![
            format!("{n_files} files, zipf {exponent}"),
            f2(v_ec / v_sp),
            f2(asym),
            pct((mc - v_sp).abs() / v_sp),
        ]);
    }
    print_table(
        "Theorem 1 — Var(X^EC)/Var(X^SP) (paper: grows with skew, O(L_max))",
        &["workload", "exact ratio", "asymptotic ratio", "MC vs analytic err"],
        &rows,
    );
}

//! Straggler-resilience experiment: Fig. 19.

use spcache_baselines::{EcCache, SelectiveReplication};
use spcache_cluster::runner::compare_schemes;
use spcache_cluster::ClusterConfig;
use spcache_core::tuner::TunerConfig;
use spcache_core::{FileSet, SpCache};
use spcache_workload::zipf::zipf_popularities;
use spcache_workload::StragglerModel;

use crate::table::{f2, print_table};
use crate::Scale;

/// Fig. 19 — latency with injected stragglers (5% Bernoulli, Bing
/// profile) at varying request rates.
pub fn fig19_straggler_latency(scale: Scale) {
    let files = FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05));
    // Same effective-bandwidth note as fig13.
    let cfg = ClusterConfig::ec2_default()
        .with_bandwidth(100e6)
        .with_stragglers(StragglerModel::bing(0.05));
    // Algorithm 1 run with the straggler-aware bound: the analytic
    // E[max-of-k] exposure keeps α from over-splitting into straggler
    // territory (the balance §5 calls for).
    let tuner_cfg = TunerConfig {
        stragglers: StragglerModel::bing(0.05),
        ..TunerConfig::default()
    };
    let (sp, _) = SpCache::tuned(&files, cfg.n_servers, cfg.bandwidth, 18.0, &tuner_cfg);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let n_req = scale.requests(15_000);
    let mut rows = Vec::new();
    for rate in [6.0, 10.0, 14.0, 18.0, 22.0] {
        let s = compare_schemes(&[&sp, &ec, &sr], &files, rate, n_req, &cfg);
        rows.push(vec![
            format!("{rate:.0}"),
            f2(s[0].mean),
            f2(s[1].mean),
            f2(s[2].mean),
            f2(s[0].p95),
            f2(s[1].p95),
            f2(s[2].p95),
        ]);
    }
    print_table(
        "Fig. 19 — injected stragglers (paper: SP up to 40%/41% better than EC in mean/tail; \
         slightly longer SP tail at low rate is expected)",
        &["rate", "SP mean", "EC mean", "SR mean", "SP p95", "EC p95", "SR p95"],
        &rows,
    );
}

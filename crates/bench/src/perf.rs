//! Reproducible performance harness for the real store's data path.
//!
//! Drives the in-process [`StoreCluster`] over a grid of
//! `file size × k × NIC rate` points and, at each point, measures every
//! data-path variant side by side:
//!
//! * `legacy_read` / `legacy_write` — a faithful re-implementation of the
//!   **pre-select, copying** seed data path (in-order `recv_timeout`
//!   join over the reply channels, intermediate shard vector, final
//!   concat copy; zero-padded per-shard `to_vec` copies on write). It is
//!   rebuilt here from the store's public RPC surface so the production
//!   client stays clean while every future PR can still measure itself
//!   against the original baseline.
//! * `read` — the production select-driven join materializing a
//!   contiguous buffer ([`spcache_store::Client::read`], one copy).
//! * `read_scattered` — the production zero-copy join
//!   ([`spcache_store::Client::read_scattered`], no copies).
//! * `write` / `write_bytes` — the one-copy and zero-copy write paths.
//! * `tcp_write` / `tcp_read` / `tcp_read_scattered` — the same
//!   production client driven over a real loopback-TCP cluster
//!   ([`spcache_net::TcpCluster`]): every byte crosses a socket and the
//!   wire codec, so these rows price the transport itself. The
//!   `tcp_read_slowdown` / `tcp_write_slowdown` ratios summarize that
//!   cost against the in-process rows.
//! * `recovery` — time-to-heal of the supervisor's proactive sweep
//!   (DESIGN.md §4.11): a worker holding a partition of each of
//!   [`RECOVERY_FILES`] files is killed, and the timed window covers one
//!   [`spcache_store::SupervisorCore::sweep`] re-materializing all of
//!   them from the under-store onto the survivors. Setup (writes,
//!   checkpoints, death detection) stays outside the window; one op =
//!   one sweep, and `mbytes_per_sec` is healed payload per second.
//! * `zipf_unbounded_read` / `zipf_budget_read` — a Zipf read storm over
//!   [`ZIPF_FILES`] checkpointed files, without and with a
//!   50%-of-dataset memory budget (DESIGN.md §4.13): the budgeted row
//!   prices LRU eviction, under-store free drops and transparent
//!   reloads; the `budget_read_ratio` summary is their quotient.
//! * `paced_recovery` — the recovery sweep re-run with its traffic paced
//!   to [`PACED_FRACTION`] of the NIC while a foreground Zipf storm
//!   runs; `paced_bg_utilization` reports how much of the carve-out the
//!   sweep actually used (≤ 1.1 by the pacing contract).
//! * `verified_read` — the contiguous read against a `verify_reads`
//!   fleet (DESIGN.md §4.15), A/B-interleaved against the plain `read`;
//!   their quotient is the `verify_overhead` summary, floored at 0.95
//!   by [`validate_report_json`] (verification is per byte movement,
//!   not per request, so steady-state reads must stay near-free).
//! * `parity_read` — a read that loses one data partition to a delete
//!   every op and rebuilds it from the file's Cauchy-RS parity: the
//!   full corruption-to-erasure recovery price (late-binding `k + r`
//!   re-fetch, decode, fire-and-forget read repair).
//!
//! Per point and variant it reports reads (or writes) per second, bytes
//! moved, and p50/p95/p99 latency, and emits a schema-stable
//! `BENCH_store.json` (see [`SCHEMA`]) so perf is tracked across PRs.
//! [`validate_report_json`] is the CI smoke check over that file.

use std::time::{Duration, Instant};

use bytes::Bytes;
use spcache_ec::{join_shards_bytes, split_into_shards};
use spcache_metrics::Samples;
use spcache_store::rpc::{PartKey, Request};
use spcache_store::transport::Transport;
use spcache_store::{StoreCluster, StoreConfig, StoreError};

/// Schema identifier stamped into the emitted JSON; bump on breaking
/// layout changes so downstream tooling can dispatch. v2 adds the
/// loopback-TCP variants (`tcp_write`, `tcp_read`, `tcp_read_scattered`)
/// and the `tcp_read_slowdown` / `tcp_write_slowdown` point summaries.
/// v3 adds the `recovery` variant (supervisor sweep time-to-heal).
/// v4 adds the `tcp_scattered_slowdown` point summary (wire cost of the
/// zero-copy read path, priced by the readiness-driven event loop).
/// v5 adds the memory-budget rows (DESIGN.md §4.13): the
/// `zipf_unbounded_read` / `zipf_budget_read` variants (a Zipf read
/// storm without and with a 50%-of-dataset budget forcing
/// eviction/reload), the `paced_recovery` variant (a sweep whose
/// background traffic is paced to [`PACED_FRACTION`] of the NIC while a
/// foreground storm runs), and the `budget_read_ratio` /
/// `paced_bg_utilization` point summaries.
/// v6 adds the integrity rows (DESIGN.md §4.15): the `verified_read`
/// variant (the contiguous read against a checksum-verifying fleet) and
/// the `parity_read` variant (every op rebuilds a deleted partition
/// from Cauchy-RS parity), plus the `verify_overhead` point summary —
/// the plain-over-verified read quotient, which
/// [`validate_report_json`] floors at 0.95.
pub const SCHEMA: &str = "spcache-bench-store/v6";

/// Files the `recovery` variant loses per sweep: every one holds a
/// partition on the killed worker, so one sweep re-materializes
/// `RECOVERY_FILES × file_bytes` of payload.
pub const RECOVERY_FILES: u64 = 3;

/// Dataset size of the `zipf_*_read` variants (files per point; each is
/// `file_bytes / 16`, floored at 64 KB, so a point's Zipf working set
/// stays comparable to one headline file).
pub const ZIPF_FILES: u64 = 12;

/// Reads folded into one timed `zipf_*_read` operation.
pub const ZIPF_READS_PER_OP: usize = 16;

/// Skew of the Zipf read storms — the paper's canonical ~1.1.
pub const ZIPF_EXPONENT: f64 = 1.1;

/// NIC share granted to background traffic in the `paced_recovery`
/// variant (paper §4.4's bandwidth carve-out).
pub const PACED_FRACTION: f64 = 0.5;

/// NIC rate substituted for unthrottled grid points in `paced_recovery`
/// — pacing is meaningless against an infinite NIC, so those points are
/// measured at 10 Gb/s.
pub const PACED_FALLBACK_NIC: f64 = 1.25e9;

/// One cell of the measurement grid.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// File size in bytes.
    pub file_bytes: usize,
    /// Partition count.
    pub k: usize,
    /// Worker (cache server) count.
    pub workers: usize,
    /// Emulated NIC bandwidth in bytes/s (`f64::INFINITY` = unthrottled).
    pub nic_bytes_per_sec: f64,
    /// Timed iterations per variant.
    pub iters: usize,
}

impl GridPoint {
    /// Human-readable point label, e.g. `64MB_k16_w8_unthrottled`.
    pub fn label(&self) -> String {
        let nic = if self.nic_bytes_per_sec.is_infinite() {
            "unthrottled".to_string()
        } else {
            format!("{:.0}MBps", self.nic_bytes_per_sec / 1e6)
        };
        format!(
            "{}MB_k{}_w{}_{}",
            self.file_bytes / (1 << 20),
            self.k,
            self.workers,
            nic
        )
    }
}

/// Latency/throughput measurements of one data-path variant at one point.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Variant name (`legacy_read`, `read`, `read_scattered`, …).
    pub variant: String,
    /// Operations per second over the timed iterations.
    pub ops_per_sec: f64,
    /// Payload bytes moved per second.
    pub mbytes_per_sec: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Total payload bytes moved.
    pub bytes_moved: u64,
}

/// All variant measurements at one grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The grid cell measured.
    pub point: GridPoint,
    /// Per-variant results.
    pub variants: Vec<VariantResult>,
    /// Read throughput of the zero-copy select-driven path over the
    /// legacy path (`read_scattered / legacy_read`).
    pub read_speedup_scattered: f64,
    /// Read throughput of the contiguous select-driven path over the
    /// legacy path (`read / legacy_read`).
    pub read_speedup_contiguous: f64,
    /// Write throughput of the zero-copy path over the legacy path
    /// (`write_bytes / legacy_write`).
    pub write_speedup: f64,
    /// Wire cost of a read: in-process contiguous read throughput over
    /// loopback-TCP read throughput (`read / tcp_read`; > 1 means the
    /// socket path is slower).
    pub tcp_read_slowdown: f64,
    /// Wire cost of a write (`write / tcp_write`).
    pub tcp_write_slowdown: f64,
    /// Wire cost of the zero-copy read path
    /// (`read_scattered / tcp_read_scattered`): how much the socket +
    /// codec round trip costs when neither side copies payload bytes.
    pub tcp_scattered_slowdown: f64,
    /// Zipf read throughput under a 50%-of-dataset memory budget over
    /// the unbounded baseline (`zipf_budget_read / zipf_unbounded_read`);
    /// the ISSUE 7 acceptance floor is 0.8.
    pub budget_read_ratio: f64,
    /// Background bytes of the paced recovery sweep over the bandwidth
    /// the carve-out permits (`bg_bytes / (fraction × rate × elapsed ×
    /// live_workers)`); must stay ≤ 1.1 per the pacing contract.
    pub paced_bg_utilization: f64,
    /// Plain contiguous read time over checksum-verified read time
    /// (`read / verified_read`, A/B-interleaved so scheduler noise lands
    /// on both sides of the quotient). The §4.15 acceptance floor is
    /// 0.95 — verification is per byte movement, not per request, so a
    /// steady-state verified read must cost within 5% of a plain one —
    /// and [`validate_report_json`] enforces it.
    pub verify_overhead: f64,
}

/// A full harness run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Grid-point results in grid order.
    pub points: Vec<PointResult>,
    /// Whether this was the `--quick` grid.
    pub quick: bool,
}

/// The default measurement grid. `quick` shrinks it to one small point
/// for CI smoke runs; the full grid includes the headline point
/// (64 MB files, k = 16, 8 workers, unthrottled) plus size/k/NIC sweeps.
pub fn default_grid(quick: bool) -> Vec<GridPoint> {
    if quick {
        return vec![GridPoint {
            file_bytes: 4 << 20,
            k: 4,
            workers: 4,
            nic_bytes_per_sec: f64::INFINITY,
            iters: 5,
        }];
    }
    let mut grid = Vec::new();
    // Headline: the acceptance point.
    grid.push(GridPoint {
        file_bytes: 64 << 20,
        k: 16,
        workers: 8,
        nic_bytes_per_sec: f64::INFINITY,
        iters: 12,
    });
    // Size sweep at k = 8.
    for &mb in &[16usize, 64] {
        grid.push(GridPoint {
            file_bytes: mb << 20,
            k: 8,
            workers: 8,
            nic_bytes_per_sec: f64::INFINITY,
            iters: 12,
        });
    }
    // k sweep at 16 MB.
    grid.push(GridPoint {
        file_bytes: 16 << 20,
        k: 4,
        workers: 8,
        nic_bytes_per_sec: f64::INFINITY,
        iters: 12,
    });
    // One throttled point: 10 Gb/s NICs, where transfer time dominates
    // and the copy savings shrink — the honest lower bound.
    grid.push(GridPoint {
        file_bytes: 16 << 20,
        k: 8,
        workers: 8,
        nic_bytes_per_sec: 1.25e9,
        iters: 8,
    });
    grid
}

/// Deterministic but non-trivial payload.
fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + 7) % 256) as u8).collect()
}

/// Distinct-as-possible placement of `k` partitions over `workers`.
fn placement(k: usize, workers: usize) -> Vec<usize> {
    (0..k).map(|j| j % workers).collect()
}

// ---------------------------------------------------------------------
// The legacy (seed) data path, re-implemented over the raw RPC surface.
// ---------------------------------------------------------------------

/// The seed write path: zero-padded `split_into_shards` (one full copy),
/// `Bytes::from` per shard (a second copy), in-order reply collection.
fn legacy_write(
    transport: &dyn Transport,
    id: u64,
    data: &[u8],
    servers: &[usize],
) -> Result<(), StoreError> {
    let shards = split_into_shards(data, servers.len());
    let mut pending = Vec::with_capacity(servers.len());
    for (j, (shard, &server)) in shards.into_iter().zip(servers).enumerate() {
        let rx = transport.submit(
            server,
            Request::Put {
                key: PartKey::new(id, j as u32),
                data: Bytes::from(shard),
                sum: 0,
            },
        )?;
        pending.push((server, rx));
    }
    for (server, rx) in pending {
        rx.recv_timeout(Duration::from_secs(30))
            .map_err(|_| StoreError::WorkerDown(server))?
            .unit()?;
    }
    Ok(())
}

/// The seed read path: fire all gets, then await replies **in index
/// order** with a fresh per-partition deadline each, collect them into an
/// intermediate shard vector, and concat-copy at the end.
fn legacy_read(
    transport: &dyn Transport,
    id: u64,
    size: usize,
    servers: &[usize],
) -> Result<Vec<u8>, StoreError> {
    let k = servers.len();
    let mut pending = Vec::with_capacity(k);
    for (j, &server) in servers.iter().enumerate() {
        let rx = transport.submit(
            server,
            Request::Get {
                key: PartKey::new(id, j as u32),
            },
        )?;
        pending.push((server, rx));
    }
    let mut shards: Vec<Bytes> = Vec::with_capacity(k);
    for (server, rx) in pending {
        shards.push(
            rx.recv_timeout(Duration::from_secs(30))
                .map_err(|_| StoreError::WorkerDown(server))?
                .bytes()?,
        );
    }
    Ok(join_shards_bytes(&shards, size))
}

// ---------------------------------------------------------------------
// Measurement machinery.
// ---------------------------------------------------------------------

fn measure(
    variant: &str,
    point: &GridPoint,
    mut op: impl FnMut() -> usize,
) -> VariantResult {
    // One warm-up iteration (populates caches, faults in pages).
    let _ = op();
    let mut lat = Samples::with_capacity(point.iters);
    let mut bytes_moved = 0u64;
    let t0 = Instant::now();
    for _ in 0..point.iters {
        let it = Instant::now();
        bytes_moved += op() as u64;
        lat.record(it.elapsed().as_secs_f64() * 1e3);
    }
    let wall = t0.elapsed().as_secs_f64();
    VariantResult {
        variant: variant.to_string(),
        ops_per_sec: point.iters as f64 / wall,
        mbytes_per_sec: bytes_moved as f64 / wall / 1e6,
        p50_ms: lat.percentile(50.0),
        p95_ms: lat.percentile(95.0),
        p99_ms: lat.percentile(99.0),
        bytes_moved,
    }
}

/// Measures the supervisor's time-to-heal at one grid point: spawn a
/// supervised cluster, load [`RECOVERY_FILES`] files whose placements
/// all include worker 0, checkpoint them, kill worker 0 and let the
/// probe notice — then time exactly one recovery sweep. The first
/// (warm-up) iteration is discarded, mirroring [`measure`].
fn measure_recovery(point: &GridPoint, shared: &Bytes) -> VariantResult {
    use spcache_store::backing::{checkpoint, UnderStore};
    use spcache_store::SupervisorConfig;
    use std::sync::Arc;

    let servers = placement(point.k, point.workers);
    let mut lat = Samples::with_capacity(point.iters);
    let mut bytes_moved = 0u64;
    let mut wall = 0.0f64;
    for iter in 0..=point.iters {
        let base = if point.nic_bytes_per_sec.is_infinite() {
            StoreConfig::unthrottled(point.workers)
        } else {
            StoreConfig::throttled(point.workers, point.nic_bytes_per_sec)
        };
        let cfg = base.with_supervisor(
            SupervisorConfig::enabled()
                .with_interval(Duration::ZERO)
                .with_probe_timeout(Duration::from_millis(500)),
        );
        let under = Arc::new(UnderStore::new());
        let mut cluster = StoreCluster::spawn_with_under_store(cfg, Some(Arc::clone(&under)));
        let core = cluster.supervisor().expect("supervised cluster").core().clone();
        core.tick(); // adopt the fleet at epoch 1
        let client = cluster.client();
        for id in 0..RECOVERY_FILES {
            client.write_bytes(id, shared.clone(), &servers).expect("recovery seed write");
            checkpoint(&client, &under, id).expect("recovery checkpoint");
        }
        cluster.kill_worker(0);
        core.probe(); // death detection, outside the timed window
        let t = Instant::now();
        let rec = core.sweep().expect("dead worker must leave degraded files");
        let dt = t.elapsed();
        assert_eq!(
            rec.healed.len() as u64,
            RECOVERY_FILES,
            "sweep must heal every lost file: {rec:?}"
        );
        if iter == 0 {
            continue; // warm-up
        }
        lat.record(dt.as_secs_f64() * 1e3);
        bytes_moved += RECOVERY_FILES * point.file_bytes as u64;
        wall += dt.as_secs_f64();
    }
    VariantResult {
        variant: "recovery".to_string(),
        ops_per_sec: point.iters as f64 / wall,
        mbytes_per_sec: bytes_moved as f64 / wall / 1e6,
        p50_ms: lat.percentile(50.0),
        p95_ms: lat.percentile(95.0),
        p99_ms: lat.percentile(99.0),
        bytes_moved,
    }
}

/// Measures a Zipf read storm over [`ZIPF_FILES`] files, optionally
/// under a per-worker memory budget of `budget_fraction` × the worker's
/// unbounded resident share. With a budget, cold partitions are evicted
/// — written back to each worker's spill tier — and reads of evicted
/// partitions transparently reload them, so the row prices
/// eviction/refill end to end: the writeback, the slow-tier reload, and
/// the re-admission churn.
fn measure_zipf(point: &GridPoint, variant: &str, budget_fraction: Option<f64>) -> VariantResult {
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;
    use spcache_workload::zipf::ZipfSampler;

    let file_len = (point.file_bytes / 16).max(64 << 10);
    let servers_of = |id: u64| -> Vec<usize> {
        (0..point.k)
            .map(|j| (id as usize + j) % point.workers)
            .collect()
    };
    let total_bytes = ZIPF_FILES as usize * file_len;
    let budget =
        budget_fraction.map(|f| ((total_bytes / point.workers) as f64 * f).max(1.0) as usize);
    let base = if point.nic_bytes_per_sec.is_infinite() {
        StoreConfig::unthrottled(point.workers)
    } else {
        StoreConfig::throttled(point.workers, point.nic_bytes_per_sec)
    };
    let cluster = StoreCluster::spawn(base.with_memory_budget(budget));
    let client = cluster.client();
    let shared = Bytes::from(payload(file_len));
    for id in 0..ZIPF_FILES {
        client
            .write_bytes(id, shared.clone(), &servers_of(id))
            .expect("zipf seed write");
    }
    let sampler = ZipfSampler::new(ZIPF_FILES as usize, ZIPF_EXPONENT);
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x21bf);
    let name = variant.to_string();
    measure(variant, point, move || {
        let mut bytes = 0usize;
        for _ in 0..ZIPF_READS_PER_OP {
            let id = sampler.sample(&mut rng) as u64;
            bytes += client
                .read_quiet(id)
                .unwrap_or_else(|e| panic!("{name}: read of file {id} failed: {e:?}"))
                .len();
        }
        bytes
    })
}

/// Measures the recovery sweep with its traffic paced to
/// [`PACED_FRACTION`] of the NIC (unthrottled points run at
/// [`PACED_FALLBACK_NIC`]) while a foreground Zipf storm keeps the
/// survivors busy. Returns the variant row plus the measured background
/// utilization: healed background bytes over what the carve-out permits
/// across the sweep window — ≤ 1.1 means the pacer held its fraction.
fn measure_paced_recovery(point: &GridPoint, shared: &Bytes) -> (VariantResult, f64) {
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;
    use spcache_store::backing::{checkpoint, UnderStore};
    use spcache_store::SupervisorConfig;
    use spcache_workload::zipf::ZipfSampler;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let rate = if point.nic_bytes_per_sec.is_finite() {
        point.nic_bytes_per_sec
    } else {
        PACED_FALLBACK_NIC
    };
    let servers = placement(point.k, point.workers);
    let iters = point.iters.min(5);
    let load_len = (point.file_bytes / 16).max(64 << 10);
    let load_data = Bytes::from(payload(load_len));
    const LOAD_FILES: u64 = 8;
    let mut lat = Samples::with_capacity(iters);
    let mut bytes_moved = 0u64;
    let mut wall = 0.0f64;
    let mut util_sum = 0.0f64;
    for iter in 0..=iters {
        let cfg = StoreConfig::throttled(point.workers, rate)
            .with_background_fraction(PACED_FRACTION)
            .with_supervisor(
                SupervisorConfig::enabled()
                    .with_interval(Duration::ZERO)
                    .with_probe_timeout(Duration::from_millis(500)),
            );
        let under = Arc::new(UnderStore::new());
        let mut cluster = StoreCluster::spawn_with_under_store(cfg, Some(Arc::clone(&under)));
        let core = cluster.supervisor().expect("supervised cluster").core().clone();
        core.tick(); // adopt the fleet at epoch 1
        let client = cluster.client();
        for id in 0..RECOVERY_FILES {
            client.write_bytes(id, shared.clone(), &servers).expect("paced seed write");
            checkpoint(&client, &under, id).expect("paced checkpoint");
        }
        // The storm's files live strictly off worker 0, so the
        // foreground load never stalls on the corpse mid-sweep.
        for id in 100..100 + LOAD_FILES {
            let off_corpse: Vec<usize> = (0..point.k)
                .map(|j| 1 + (id as usize + j) % (point.workers - 1))
                .collect();
            client.write_bytes(id, load_data.clone(), &off_corpse).expect("load write");
        }
        let stop = Arc::new(AtomicBool::new(false));
        let storm = {
            let client = cluster.client();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let sampler = ZipfSampler::new(LOAD_FILES as usize, ZIPF_EXPONENT);
                let mut rng = Xoshiro256StarStar::seed_from_u64(0xfeed);
                while !stop.load(Ordering::Relaxed) {
                    let id = 100 + sampler.sample(&mut rng) as u64;
                    let _ = client.read_quiet(id);
                }
            })
        };
        cluster.kill_worker(0);
        core.probe(); // death detection, outside the timed window
        let bg_before: u64 = cluster
            .worker_stats()
            .expect("stats")
            .iter()
            .map(|s| s.bytes_background)
            .sum();
        let t = Instant::now();
        let rec = core.sweep().expect("dead worker must leave degraded files");
        let dt = t.elapsed();
        stop.store(true, Ordering::Relaxed);
        storm.join().expect("storm thread");
        assert_eq!(
            rec.healed.len() as u64,
            RECOVERY_FILES,
            "paced sweep must heal every lost file: {rec:?}"
        );
        if iter == 0 {
            continue; // warm-up
        }
        let bg_after: u64 = cluster
            .worker_stats()
            .expect("stats")
            .iter()
            .map(|s| s.bytes_background)
            .sum();
        let live = (point.workers - 1) as f64;
        util_sum +=
            (bg_after - bg_before) as f64 / (PACED_FRACTION * rate * dt.as_secs_f64() * live);
        lat.record(dt.as_secs_f64() * 1e3);
        bytes_moved += RECOVERY_FILES * point.file_bytes as u64;
        wall += dt.as_secs_f64();
    }
    (
        VariantResult {
            variant: "paced_recovery".to_string(),
            ops_per_sec: iters as f64 / wall,
            mbytes_per_sec: bytes_moved as f64 / wall / 1e6,
            p50_ms: lat.percentile(50.0),
            p95_ms: lat.percentile(95.0),
            p99_ms: lat.percentile(99.0),
            bytes_moved,
        },
        util_sum / iters as f64,
    )
}

/// The point's base config (NIC throttled or not), shared by the
/// integrity rows.
fn point_config(point: &GridPoint) -> StoreConfig {
    if point.nic_bytes_per_sec.is_infinite() {
        StoreConfig::unthrottled(point.workers)
    } else {
        StoreConfig::throttled(point.workers, point.nic_bytes_per_sec)
    }
}

/// Measures the contiguous read against a `verify_reads` fleet
/// (DESIGN.md §4.15) and its cost relative to the plain read. Workers
/// verify each partition on the first read after it lands (and after
/// every later byte movement); client-side re-verification is the
/// wire-fault knob priced by the chaos harness, not this row. The two
/// paths are A/B-interleaved iteration by iteration — `plain` reads the
/// main cluster's seed file between each verified read — so scheduler
/// noise lands on both sides of the returned
/// `verify_overhead = t_plain / t_verified` quotient, and the quotient
/// is the best of three whole loops so one unlucky window cannot flake
/// the 0.95 floor (mirrors the contiguous-read regression gate).
fn measure_verified(
    point: &GridPoint,
    shared: &Bytes,
    servers: &[usize],
    plain: &spcache_store::Client,
) -> (VariantResult, f64) {
    let cluster = StoreCluster::spawn(point_config(point).with_verify_reads(true));
    // The writer stamps real checksums onto the Puts (a non-verifying
    // writer would stamp the UNVERIFIED sentinel and the fleet would
    // have nothing to check); the reader then trusts the in-process
    // transport and leaves verification to the workers.
    cluster
        .client()
        .write_bytes(1, shared.clone(), servers)
        .expect("verified seed write");
    let client = cluster.client().with_verify(false);
    // Warm-up: pays the one post-landing verification pass per
    // partition, mirroring `measure`'s discarded first iteration.
    let _ = client.read_quiet(1).expect("verified warm-up");
    let _ = plain.read_quiet(1).expect("plain warm-up");
    const LOOPS: usize = 3;
    let mut lat = Samples::with_capacity(LOOPS * point.iters);
    let mut bytes_moved = 0u64;
    let mut t_total = 0.0f64;
    let mut best = f64::NEG_INFINITY;
    for _ in 0..LOOPS {
        let (mut t_verified, mut t_plain) = (0.0f64, 0.0f64);
        for _ in 0..point.iters {
            let t = Instant::now();
            bytes_moved += client.read_quiet(1).expect("verified read").len() as u64;
            let dt = t.elapsed().as_secs_f64();
            t_verified += dt;
            lat.record(dt * 1e3);
            let t = Instant::now();
            let _ = plain.read_quiet(1).expect("plain read");
            t_plain += t.elapsed().as_secs_f64();
        }
        t_total += t_verified;
        best = best.max(t_plain / t_verified);
    }
    (
        VariantResult {
            variant: "verified_read".to_string(),
            ops_per_sec: (LOOPS * point.iters) as f64 / t_total,
            mbytes_per_sec: bytes_moved as f64 / t_total / 1e6,
            p50_ms: lat.percentile(50.0),
            p95_ms: lat.percentile(95.0),
            p99_ms: lat.percentile(99.0),
            bytes_moved,
        },
        best,
    )
}

/// Measures the corruption-to-erasure recovery read (DESIGN.md §4.15):
/// every op deletes one data partition out from under the file, so the
/// read pays the full parity path — the typed erasure, the late-binding
/// `k + r` re-fetch, the Cauchy-RS decode, and the fire-and-forget read
/// repair. The repair's re-landed partition is removed again by the
/// next op's delete (the channel transport orders both FIFO per
/// worker), so every timed iteration decodes.
fn measure_parity_read(point: &GridPoint, shared: &Bytes) -> VariantResult {
    let cluster =
        StoreCluster::spawn(point_config(point).with_verify_reads(true).with_parity(1));
    // Leave the last worker dataless: parity never shares a server with
    // a data partition, so the spread keeps exactly one spare for the
    // `r = 1` shard.
    let spread = point.workers - 1;
    let servers: Vec<usize> = (0..point.k).map(|j| j % spread).collect();
    let client = cluster.client();
    client
        .write_bytes(1, shared.clone(), &servers)
        .expect("parity seed write");
    let transport = cluster.transport().clone();
    let victim = servers[0];
    measure("parity_read", point, move || {
        transport
            .call(
                victim,
                Request::Delete {
                    key: PartKey::new(1, 0),
                },
                Duration::from_secs(5),
            )
            .expect("partition delete");
        client.read_quiet(1).expect("parity read").len()
    })
}

/// Measures every data-path variant at one grid point.
pub fn run_point(point: GridPoint) -> PointResult {
    let data = payload(point.file_bytes);
    let servers = placement(point.k, point.workers);
    let cfg = if point.nic_bytes_per_sec.is_infinite() {
        StoreConfig::unthrottled(point.workers)
    } else {
        StoreConfig::throttled(point.workers, point.nic_bytes_per_sec)
    };
    let cluster = StoreCluster::spawn(cfg);
    let client = cluster.client();
    let transport = cluster.transport().clone();
    let shared = Bytes::from(data.clone());

    let mut variants = Vec::new();

    // Write paths: write under a fresh id each iteration, deleting after
    // so the footprint stays bounded. Deletion time is inside the timed
    // window for all three variants equally.
    let mut next_id = 1_000_000u64;
    variants.push(measure("legacy_write", &point, || {
        next_id += 1;
        legacy_write(transport.as_ref(), next_id, &data, &servers).expect("legacy write");
        for (j, &s) in servers.iter().enumerate() {
            let _ = transport.call(
                s,
                Request::Delete {
                    key: PartKey::new(next_id, j as u32),
                },
                Duration::from_secs(5),
            );
        }
        data.len()
    }));
    variants.push(measure("write", &point, || {
        next_id += 1;
        client.write(next_id, &data, &servers).expect("write");
        client.delete(next_id).expect("delete");
        data.len()
    }));
    variants.push(measure("write_bytes", &point, || {
        next_id += 1;
        client
            .write_bytes(next_id, shared.clone(), &servers)
            .expect("write_bytes");
        client.delete(next_id).expect("delete");
        data.len()
    }));

    // Read paths, all against the same resident file.
    client.write_bytes(1, shared.clone(), &servers).expect("seed write");
    variants.push(measure("legacy_read", &point, || {
        legacy_read(transport.as_ref(), 1, data.len(), &servers)
            .expect("legacy read")
            .len()
    }));
    variants.push(measure("read", &point, || {
        client.read_quiet(1).expect("read").len()
    }));
    variants.push(measure("read_scattered", &point, || {
        let f = client.read_scattered(1).expect("read_scattered");
        f.size()
    }));

    // The same production client over real loopback sockets: a separate
    // TcpCluster with the identical worker configuration, so the delta
    // against `write`/`read` is purely the wire (codec + TCP + demux).
    let tcp_cfg = if point.nic_bytes_per_sec.is_infinite() {
        StoreConfig::unthrottled(point.workers)
    } else {
        StoreConfig::throttled(point.workers, point.nic_bytes_per_sec)
    };
    let tcp = spcache_net::TcpCluster::spawn(tcp_cfg);
    let tcp_client = tcp.client();
    variants.push(measure("tcp_write", &point, || {
        next_id += 1;
        tcp_client.write(next_id, &data, &servers).expect("tcp write");
        tcp_client.delete(next_id).expect("tcp delete");
        data.len()
    }));
    tcp_client.write_bytes(1, shared.clone(), &servers).expect("tcp seed write");
    variants.push(measure("tcp_read", &point, || {
        tcp_client.read_quiet(1).expect("tcp read").len()
    }));
    variants.push(measure("tcp_read_scattered", &point, || {
        let f = tcp_client.read_scattered(1).expect("tcp read_scattered");
        f.size()
    }));
    tcp.shutdown();

    // Time-to-heal of the supervisor's recovery sweep.
    variants.push(measure_recovery(&point, &shared));

    // Memory-budget rows (DESIGN.md §4.13): the same Zipf storm with and
    // without a 50%-of-dataset budget, and a recovery sweep paced to the
    // background NIC carve-out under foreground load.
    variants.push(measure_zipf(&point, "zipf_unbounded_read", None));
    variants.push(measure_zipf(&point, "zipf_budget_read", Some(0.5)));
    let (paced, paced_bg_utilization) = measure_paced_recovery(&point, &shared);
    variants.push(paced);

    // Integrity rows (DESIGN.md §4.15): the checksum-verified read
    // priced A/B against the plain read, and a read that rebuilds a
    // deleted partition from Cauchy-RS parity every op.
    let (verified, verify_overhead) = measure_verified(&point, &shared, &servers, &client);
    variants.push(verified);
    variants.push(measure_parity_read(&point, &shared));

    let thpt = |name: &str| {
        variants
            .iter()
            .find(|v| v.variant == name)
            .map(|v| v.mbytes_per_sec)
            .unwrap_or(f64::NAN)
    };
    PointResult {
        read_speedup_scattered: thpt("read_scattered") / thpt("legacy_read"),
        read_speedup_contiguous: thpt("read") / thpt("legacy_read"),
        write_speedup: thpt("write_bytes") / thpt("legacy_write"),
        tcp_read_slowdown: thpt("read") / thpt("tcp_read"),
        tcp_write_slowdown: thpt("write") / thpt("tcp_write"),
        tcp_scattered_slowdown: thpt("read_scattered") / thpt("tcp_read_scattered"),
        budget_read_ratio: thpt("zipf_budget_read") / thpt("zipf_unbounded_read"),
        paced_bg_utilization,
        verify_overhead,
        point,
        variants,
    }
}

/// Runs the whole grid, logging progress to stderr.
pub fn run_grid(grid: &[GridPoint], quick: bool) -> PerfReport {
    let mut points = Vec::with_capacity(grid.len());
    for &point in grid {
        eprintln!("[perf] measuring {} ...", point.label());
        let t0 = Instant::now();
        let result = run_point(point);
        eprintln!(
            "[perf]   {}: read ×{:.2} (contiguous ×{:.2}), write ×{:.2} vs legacy \
             [{:.1}s]",
            point.label(),
            result.read_speedup_scattered,
            result.read_speedup_contiguous,
            result.write_speedup,
            t0.elapsed().as_secs_f64(),
        );
        points.push(result);
    }
    PerfReport { points, quick }
}

// ---------------------------------------------------------------------
// Schema-stable JSON emission + validation (no serde needed: the format
// is hand-rolled and hand-checked so CI can smoke-test it offline).
// ---------------------------------------------------------------------

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else if x.is_infinite() && x > 0.0 {
        // NIC rate ∞ = unthrottled; encoded as null.
        "null".to_string()
    } else {
        "null".to_string()
    }
}

/// Renders the report as schema-stable JSON (key order fixed).
pub fn report_to_json(report: &PerfReport, machine: &str) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"machine\": \"{}\",\n", machine.replace('"', "'")));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": \"{}\",\n", p.point.label()));
        out.push_str(&format!("      \"file_bytes\": {},\n", p.point.file_bytes));
        out.push_str(&format!("      \"k\": {},\n", p.point.k));
        out.push_str(&format!("      \"workers\": {},\n", p.point.workers));
        out.push_str(&format!(
            "      \"nic_bytes_per_sec\": {},\n",
            json_f64(p.point.nic_bytes_per_sec)
        ));
        out.push_str(&format!("      \"iters\": {},\n", p.point.iters));
        out.push_str(&format!(
            "      \"read_speedup_scattered\": {},\n",
            json_f64(p.read_speedup_scattered)
        ));
        out.push_str(&format!(
            "      \"read_speedup_contiguous\": {},\n",
            json_f64(p.read_speedup_contiguous)
        ));
        out.push_str(&format!(
            "      \"write_speedup\": {},\n",
            json_f64(p.write_speedup)
        ));
        out.push_str(&format!(
            "      \"tcp_read_slowdown\": {},\n",
            json_f64(p.tcp_read_slowdown)
        ));
        out.push_str(&format!(
            "      \"tcp_write_slowdown\": {},\n",
            json_f64(p.tcp_write_slowdown)
        ));
        out.push_str(&format!(
            "      \"tcp_scattered_slowdown\": {},\n",
            json_f64(p.tcp_scattered_slowdown)
        ));
        out.push_str(&format!(
            "      \"budget_read_ratio\": {},\n",
            json_f64(p.budget_read_ratio)
        ));
        out.push_str(&format!(
            "      \"paced_bg_utilization\": {},\n",
            json_f64(p.paced_bg_utilization)
        ));
        out.push_str(&format!(
            "      \"verify_overhead\": {},\n",
            json_f64(p.verify_overhead)
        ));
        out.push_str("      \"variants\": [\n");
        for (j, v) in p.variants.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"variant\": \"{}\", \"ops_per_sec\": {}, \
                 \"mbytes_per_sec\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \
                 \"p99_ms\": {}, \"bytes_moved\": {}}}{}\n",
                v.variant,
                json_f64(v.ops_per_sec),
                json_f64(v.mbytes_per_sec),
                json_f64(v.p50_ms),
                json_f64(v.p95_ms),
                json_f64(v.p99_ms),
                v.bytes_moved,
                if j + 1 < p.variants.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates an emitted `BENCH_store.json`: the schema marker and every
/// required key must be present, and every number attached to a required
/// metric key must parse as a finite, strictly positive `f64`. This is
/// the CI bench-smoke check, so it accepts exactly what
/// [`report_to_json`] writes and nothing sloppier.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_report_json(json: &str) -> Result<(), String> {
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing or wrong schema marker (want {SCHEMA})"));
    }
    for key in [
        "\"machine\"",
        "\"points\"",
        "\"label\"",
        "\"file_bytes\"",
        "\"k\"",
        "\"workers\"",
        "\"iters\"",
        "\"read_speedup_scattered\"",
        "\"read_speedup_contiguous\"",
        "\"write_speedup\"",
        "\"tcp_read_slowdown\"",
        "\"tcp_write_slowdown\"",
        "\"tcp_scattered_slowdown\"",
        "\"budget_read_ratio\"",
        "\"paced_bg_utilization\"",
        "\"verify_overhead\"",
        "\"variants\"",
        "\"ops_per_sec\"",
        "\"mbytes_per_sec\"",
        "\"p50_ms\"",
        "\"p95_ms\"",
        "\"p99_ms\"",
        "\"bytes_moved\"",
    ] {
        if !json.contains(key) {
            return Err(format!("required key {key} absent"));
        }
    }
    // Every metric value must be a finite positive number.
    for metric in [
        "\"ops_per_sec\": ",
        "\"mbytes_per_sec\": ",
        "\"p50_ms\": ",
        "\"p95_ms\": ",
        "\"p99_ms\": ",
        "\"read_speedup_scattered\": ",
        "\"read_speedup_contiguous\": ",
        "\"write_speedup\": ",
        "\"tcp_read_slowdown\": ",
        "\"tcp_write_slowdown\": ",
        "\"tcp_scattered_slowdown\": ",
        "\"budget_read_ratio\": ",
        "\"paced_bg_utilization\": ",
        "\"verify_overhead\": ",
    ] {
        for (found, chunk) in json.match_indices(metric) {
            let rest = &json[found + metric.len()..];
            let end = rest
                .find([',', '}', '\n'])
                .unwrap_or(rest.len());
            let token = rest[..end].trim();
            let value: f64 = token
                .parse()
                .map_err(|_| format!("{chunk}: unparseable number {token:?}"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{chunk}: non-finite or non-positive value {value}"));
            }
        }
    }
    // The variant set must be complete in every point.
    for variant in [
        "legacy_write",
        "write",
        "write_bytes",
        "legacy_read",
        "read",
        "read_scattered",
        "tcp_write",
        "tcp_read",
        "tcp_read_scattered",
        "recovery",
        "zipf_unbounded_read",
        "zipf_budget_read",
        "paced_recovery",
        "verified_read",
        "parity_read",
    ] {
        if !json.contains(&format!("\"variant\": \"{variant}\"")) {
            return Err(format!("variant {variant} missing from report"));
        }
    }
    // The §4.15 acceptance floor: a checksummed read must stay within
    // 5% of the plain read path at every point.
    for (found, _) in json.match_indices("\"verify_overhead\": ") {
        let rest = &json[found + "\"verify_overhead\": ".len()..];
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        let token = rest[..end].trim();
        let value: f64 = token
            .parse()
            .map_err(|_| format!("verify_overhead: unparseable number {token:?}"))?;
        if value < 0.95 {
            return Err(format!(
                "verify_overhead {value:.3} below the 0.95 floor: checksummed reads \
                 cost more than 5% over plain reads"
            ));
        }
    }
    Ok(())
}

/// A one-line machine descriptor for the report header.
pub fn machine_descriptor() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!("{} {} / {cpus} cpus", std::env::consts::OS, std::env::consts::ARCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The harness times wall clock, so tests that spin up clusters must
    /// not share the machine with each other — the test runner's default
    /// parallelism would turn scheduler contention into phantom
    /// regressions on small CI boxes.
    static TIMING: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TIMING.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn quick_grid_runs_and_emits_valid_json() {
        let _serial = serial();
        let grid = default_grid(true);
        let report = run_grid(&grid, true);
        assert_eq!(report.points.len(), 1);
        let json = report_to_json(&report, &machine_descriptor());
        validate_report_json(&json).expect("emitted JSON must validate");
    }

    #[test]
    fn validation_rejects_broken_reports() {
        let _serial = serial();
        assert!(validate_report_json("{}").is_err());
        let grid = default_grid(true);
        let report = run_grid(&grid, true);
        let json = report_to_json(&report, "test");
        // Corrupt a metric into a NaN.
        let bad = json.replacen("\"p50_ms\": ", "\"p50_ms\": NaN, \"x\": ", 1);
        assert!(validate_report_json(&bad).is_err());
        let bad = json.replace(&format!("\"schema\": \"{SCHEMA}\""), "\"schema\": \"other\"");
        assert!(validate_report_json(&bad).is_err());
        // The §4.15 verify_overhead floor is enforced, not just parsed:
        // shift the measured value onto a scratch key and plant one
        // below the floor.
        let bad = json.replacen(
            "\"verify_overhead\": ",
            "\"verify_overhead\": 0.500000, \"shifted\": ",
            1,
        );
        let err = validate_report_json(&bad).expect_err("0.5 must violate the floor");
        assert!(err.contains("0.95 floor"), "unexpected error: {err}");
    }

    /// Tier-1 regression gate for the contiguous read path: `read` must
    /// stay within 10% of `legacy_read`. The scatter-on-arrival sink
    /// overlaps the single materializing copy with the network wait, so
    /// a healthy build clears 0.9 easily — but only once files are big
    /// enough that copy time dominates the select-join's fixed per-op
    /// overhead, hence a 16 MB gate point rather than the 4 MB quick
    /// point (where both builds sit near ×0.7 by design).
    ///
    /// Measured as an interleaved A/B rather than via [`run_point`]: the
    /// two variants alternate iteration by iteration inside one cluster,
    /// so scheduler noise from sibling tests lands on both sides of the
    /// ratio equally. Best-of-3 over whole loops keeps one unlucky
    /// window from flaking the gate.
    #[test]
    fn contiguous_read_does_not_regress_against_legacy() {
        let _serial = serial();
        let point = GridPoint {
            file_bytes: 16 << 20,
            k: 8,
            workers: 4,
            nic_bytes_per_sec: f64::INFINITY,
            iters: 8,
        };
        let data = payload(point.file_bytes);
        let servers = placement(point.k, point.workers);
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(point.workers));
        let client = cluster.client();
        let transport = cluster.transport().clone();
        client
            .write_bytes(1, Bytes::from(data.clone()), &servers)
            .expect("gate seed write");

        let speedup_once = || {
            // Warm both paths (page faults, lazily-grown buffers).
            legacy_read(transport.as_ref(), 1, data.len(), &servers).expect("warm legacy");
            client.read_quiet(1).expect("warm read");
            let (mut t_legacy, mut t_read) = (0.0f64, 0.0f64);
            for _ in 0..point.iters {
                let t = Instant::now();
                legacy_read(transport.as_ref(), 1, data.len(), &servers).expect("legacy read");
                t_legacy += t.elapsed().as_secs_f64();
                let t = Instant::now();
                client.read_quiet(1).expect("read");
                t_read += t.elapsed().as_secs_f64();
            }
            t_legacy / t_read
        };
        let best = (0..3).map(|_| speedup_once()).fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best >= 0.9,
            "contiguous read regressed: read/legacy_read = {best:.3} < 0.9 \
             (best of 3 at {})",
            point.label()
        );
    }

    #[test]
    fn legacy_paths_are_byte_exact() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let transport = cluster.transport().clone();
        let data = payload(100_001);
        let servers = placement(8, 4);
        legacy_write(transport.as_ref(), 9, &data, &servers).unwrap();
        cluster.master().register(9, data.len(), servers.clone()).unwrap();
        assert_eq!(
            legacy_read(transport.as_ref(), 9, data.len(), &servers).unwrap(),
            data
        );
        // And the production client reads the legacy layout fine.
        assert_eq!(cluster.client().read_quiet(9).unwrap(), data);
    }
}

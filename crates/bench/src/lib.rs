#![warn(missing_docs)]

//! Experiment harness regenerating every table and figure of the SP-Cache
//! paper.
//!
//! The `experiments` binary dispatches to one function per paper artifact;
//! each prints the same rows/series the paper reports. Absolute numbers
//! come from this repository's simulator and in-process store rather than
//! EC2, so they are compared against the paper by *shape* (who wins, by
//! roughly what factor, where crossovers fall) — see EXPERIMENTS.md.
//!
//! Run everything: `cargo run --release -p spcache-bench --bin experiments -- all`
//! Run one:        `cargo run --release -p spcache-bench --bin experiments -- fig13`
//! Faster pass:    add `--quick`.

pub mod experiments;
pub mod perf;
pub mod table;

/// Experiment scale: `quick` shrinks request counts ~10× for smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Divide request counts by this factor.
    pub divisor: usize,
}

impl Scale {
    /// Full-size experiments (the default).
    pub fn full() -> Self {
        Scale { divisor: 1 }
    }

    /// ~10× faster smoke-test scale.
    pub fn quick() -> Self {
        Scale { divisor: 10 }
    }

    /// Applies the scale to a request count (min 500 so percentiles stay
    /// meaningful).
    pub fn requests(&self, full: usize) -> usize {
        (full / self.divisor).max(500)
    }

    /// Applies the scale to a trial count (min 3).
    pub fn trials(&self, full: usize) -> usize {
        (full / self.divisor).max(3)
    }

    /// Applies the scale to a byte size (min 64 KiB).
    pub fn bytes(&self, full: usize) -> usize {
        (full / self.divisor).max(64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_arithmetic() {
        assert_eq!(Scale::full().requests(20_000), 20_000);
        assert_eq!(Scale::quick().requests(20_000), 2_000);
        assert_eq!(Scale::quick().requests(1_000), 500);
        assert_eq!(Scale::quick().trials(10), 3);
        assert_eq!(Scale::quick().bytes(1 << 20), 104_857);
    }
}

//! Smoke tests: the experiment dispatcher must know every advertised id,
//! and the fast experiments must run end-to-end at quick scale.

use spcache_bench::experiments::{run, ALL};
use spcache_bench::Scale;

#[test]
fn every_advertised_id_dispatches() {
    // `run` returns false only for unknown ids; spot-check the registry
    // without executing the heavy ones.
    assert!(!run("not-an-experiment", Scale::quick()));
    assert!(ALL.contains(&"fig13") && ALL.contains(&"ext-burst"));
    assert_eq!(ALL.len(), 29, "registry drifted — update this test and docs");
}

#[test]
fn fast_experiments_run_quick() {
    // The cheap, pure-computation artifacts: must complete in seconds.
    for id in ["fig1", "fig6", "fig11", "thm1", "fig17", "fig18", "ext-placement"] {
        assert!(run(id, Scale::quick()), "{id} failed to dispatch");
    }
}

#[test]
fn one_simulation_experiment_runs_quick() {
    assert!(run("fig12", Scale::quick()));
}

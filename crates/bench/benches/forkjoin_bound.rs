//! Eq. 9 solver cost and the golden-section vs coarse-grid ablation
//! (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spcache_core::forkjoin::{file_latency_bound, SolverConfig};

fn moments(k: usize) -> Vec<(f64, f64)> {
    (0..k)
        .map(|i| {
            let m = 0.1 + 0.01 * i as f64;
            (m, m * m)
        })
        .collect()
}

/// A coarse grid-search reference for the same convex objective, to show
/// why golden-section is the right tool.
fn grid_bound(moments: &[(f64, f64)]) -> f64 {
    let max_mean = moments.iter().map(|&(m, _)| m).fold(f64::MIN, f64::max);
    let max_sd = moments.iter().map(|&(_, v)| v.sqrt()).fold(0.0, f64::max);
    let lo = max_mean - 10.0 * (max_sd + 1.0);
    let hi = max_mean + max_sd;
    let mut best = f64::INFINITY;
    let steps = 10_000;
    for i in 0..=steps {
        let z = lo + (hi - lo) * i as f64 / steps as f64;
        let mut acc = z;
        for &(mean, var) in moments {
            let d = mean - z;
            acc += 0.5 * (d + (d * d + var).sqrt());
        }
        best = best.min(acc);
    }
    best
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq9_bound");
    for &k in &[5usize, 15, 30] {
        let ms = moments(k);
        let cfg = SolverConfig::default();
        g.bench_with_input(BenchmarkId::new("golden_section", k), &ms, |b, ms| {
            b.iter(|| black_box(file_latency_bound(black_box(ms), &cfg)));
        });
        g.bench_with_input(BenchmarkId::new("grid_10k", k), &ms, |b, ms| {
            b.iter(|| black_box(grid_bound(black_box(ms))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);

//! Reed–Solomon codec throughput (Fig. 4's substrate) and the GF(2⁸)
//! slice-kernel ablation (log/exp table vs ISA-L-style split nibbles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use spcache_ec::gf256;
use spcache_ec::ReedSolomon;

fn sample(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode_10_14");
    for &mb in &[1usize, 8, 32] {
        let data = sample(mb * 1_000_000);
        let rs = ReedSolomon::new(10, 14);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(format!("{mb}MB")), &data, |b, d| {
            b.iter(|| black_box(rs.encode_bytes(black_box(d))));
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_decode_10_14_two_erasures");
    for &mb in &[1usize, 8, 32] {
        let data = sample(mb * 1_000_000);
        let rs = ReedSolomon::new(10, 14);
        let shards = rs.encode_bytes(&data);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mb}MB")),
            &shards,
            |b, shards| {
                b.iter(|| {
                    let mut partial: Vec<Option<Vec<u8>>> =
                        shards.iter().cloned().map(Some).collect();
                    partial[0] = None;
                    partial[13] = None;
                    black_box(rs.reconstruct_data(&mut partial).unwrap())
                });
            },
        );
    }
    g.finish();
}

fn bench_gf_kernels(c: &mut Criterion) {
    // DESIGN.md §5 ablation: which accumulate kernel should the codec use?
    let src = sample(1 << 20);
    let mut g = c.benchmark_group("gf256_mul_acc_1MiB");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("log_exp_table", |b| {
        let mut dst = vec![0u8; src.len()];
        b.iter(|| gf256::mul_acc_slice(black_box(0x57), black_box(&src), black_box(&mut dst)));
    });
    g.bench_function("split_nibble", |b| {
        let mut dst = vec![0u8; src.len()];
        b.iter(|| {
            gf256::mul_acc_slice_nibble(black_box(0x57), black_box(&src), black_box(&mut dst))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_gf_kernels);
criterion_main!(benches);

//! Workload-generation throughput: Zipf sampling, Poisson/MMPP arrivals,
//! Yahoo population synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;

use spcache_sim::Xoshiro256StarStar;
use spcache_workload::arrivals::{MmppProcess, PoissonProcess};
use spcache_workload::yahoo;
use spcache_workload::zipf::ZipfSampler;

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf_sample");
    for &n in &[100usize, 10_000, 1_000_000] {
        let sampler = ZipfSampler::new(n, 1.1);
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(n), &sampler, |b, s| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(1);
            b.iter(|| black_box(s.sample(&mut rng)));
        });
    }
    g.finish();
}

fn bench_arrivals(c: &mut Criterion) {
    let mut g = c.benchmark_group("arrivals_10k");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("poisson", |b| {
        b.iter(|| {
            let p = PoissonProcess::new(10.0, Xoshiro256StarStar::seed_from_u64(2));
            black_box(p.take(10_000).sum::<f64>())
        });
    });
    g.bench_function("mmpp_bursty", |b| {
        b.iter(|| {
            let m = MmppProcess::bursty(10.0, 8.0, Xoshiro256StarStar::seed_from_u64(3));
            black_box(m.take(10_000).sum::<f64>())
        });
    });
    g.finish();
}

fn bench_yahoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("yahoo_population");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("generate_10k_files", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(4);
            black_box(yahoo::generate_files(10_000, &mut rng))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_zipf, bench_arrivals, bench_yahoo);
criterion_main!(benches);

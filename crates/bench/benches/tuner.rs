//! Algorithm 1 configuration cost vs file count (Fig. 10's microbench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spcache_core::tuner::{tune_scale_factor_with_rate, TunerConfig};
use spcache_core::FileSet;
use spcache_workload::zipf::zipf_popularities;

fn bench_tuner(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1_tune");
    g.sample_size(10);
    for &n_files in &[1_000usize, 3_000, 10_000] {
        let files = FileSet::uniform_size(100e6, &zipf_popularities(n_files, 1.05));
        g.bench_with_input(
            BenchmarkId::from_parameter(n_files),
            &files,
            |b, files| {
                let cfg = TunerConfig::default();
                b.iter(|| {
                    black_box(tune_scale_factor_with_rate(
                        black_box(files),
                        30,
                        125e6,
                        8.0,
                        &cfg,
                    ))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);

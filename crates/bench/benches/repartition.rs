//! Algorithm 2 planning cost and real-bytes repartition execution
//! (Fig. 16's microbench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

use spcache_core::placement::random_partition_map;
use spcache_core::repartition::plan_repartition;
use spcache_core::FileSet;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::zipf::zipf_popularities;

fn bench_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm2_plan");
    for &n_files in &[500usize, 2_000, 10_000] {
        let pops = zipf_popularities(n_files, 1.1);
        let files = FileSet::uniform_size(50e6, &pops);
        let alpha = 10.0 / files.max_load();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let old = random_partition_map(&files, alpha, 30, &mut rng);
        // Shifted popularity: reversed ranks → drastic change.
        let mut shifted = pops.clone();
        shifted.reverse();
        let sf = FileSet::uniform_size(50e6, &shifted);
        let counts: Vec<usize> = sf
            .partition_counts(alpha)
            .into_iter()
            .map(|k| k.min(30))
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(n_files),
            &(sf, old, counts),
            |b, (sf, old, counts)| {
                b.iter(|| {
                    let mut rng = Xoshiro256StarStar::seed_from_u64(2);
                    black_box(plan_repartition(
                        black_box(sf),
                        black_box(old),
                        black_box(counts),
                        &mut rng,
                    ))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);

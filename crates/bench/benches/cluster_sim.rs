//! Simulator throughput: requests simulated per second for each scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use spcache_baselines::{EcCache, SelectiveReplication};
use spcache_cluster::engine::simulate_reads;
use spcache_cluster::{ClusterConfig, ReadWorkload};
use spcache_core::scheme::CachingScheme;
use spcache_core::{FileSet, SpCache};
use spcache_workload::zipf::zipf_popularities;

fn bench_simulator(c: &mut Criterion) {
    let files = FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05));
    let cfg = ClusterConfig::ec2_default();
    let n_req = 5_000usize;
    let workload = ReadWorkload::poisson(&files, 12.0, n_req, 3);

    let sp = SpCache::with_alpha(30.0 / files.max_load());
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let schemes: Vec<(&str, &dyn CachingScheme)> =
        vec![("sp_cache", &sp), ("ec_cache", &ec), ("replication", &sr)];

    let mut g = c.benchmark_group("simulate_5k_reads");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n_req as u64));
    for (name, scheme) in schemes {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            b.iter(|| black_box(simulate_reads(*s, &files, &workload, &cfg).summary.mean()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);

//! Real-store read-path cost: parallel fork-join reads at varying k, and
//! the late-binding ablation on the simulated EC-Cache (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use spcache_baselines::EcCache;
use spcache_cluster::engine::simulate_reads;
use spcache_cluster::{ClusterConfig, ReadWorkload};
use spcache_core::FileSet;
use spcache_store::{StoreCluster, StoreConfig};
use spcache_workload::zipf::zipf_popularities;

fn bench_store_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_read_4MB");
    g.sample_size(20);
    let data: Vec<u8> = (0..4_000_000).map(|i| (i % 251) as u8).collect();
    for &k in &[1usize, 4, 8] {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(8));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).collect();
        client.write(1, &data, &servers).unwrap();
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &client, |b, client| {
            b.iter(|| black_box(client.read_quiet(1).unwrap()));
        });
    }
    g.finish();
}

fn bench_late_binding(c: &mut Criterion) {
    // Ablation: does late binding change simulated latency under
    // stragglers? (It should — that is its purpose.)
    let files = FileSet::uniform_size(100e6, &zipf_popularities(100, 1.05));
    let cfg = ClusterConfig::ec2_default()
        .with_stragglers(spcache_workload::StragglerModel::bing(0.05));
    let workload = ReadWorkload::poisson(&files, 10.0, 2_000, 7);
    let mut g = c.benchmark_group("ec_cache_sim_2k_reads");
    g.sample_size(10);
    g.bench_function("late_binding", |b| {
        let ec = EcCache::paper_config();
        b.iter(|| black_box(simulate_reads(&ec, &files, &workload, &cfg).summary.mean()));
    });
    g.bench_function("no_late_binding", |b| {
        let ec = EcCache::paper_config().without_late_binding();
        b.iter(|| black_box(simulate_reads(&ec, &files, &workload, &cfg).summary.mean()));
    });
    g.finish();
}

criterion_group!(benches, bench_store_reads, bench_late_binding);
criterion_main!(benches);

//! Online partition-adjustment cost (§8 extension): planning is pure
//! arithmetic; execution moves real bytes through worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use spcache_core::online::plan_adjust;
use spcache_store::online::execute_adjust;
use spcache_store::{StoreCluster, StoreConfig};

fn bench_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("online_plan");
    for &(old_k, new_k) in &[(1usize, 8usize), (8, 12), (12, 4)] {
        let old: Vec<usize> = (0..old_k).collect();
        let loads = vec![0.0f64; 16];
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{old_k}to{new_k}")),
            &(old, new_k),
            |b, (old, new_k)| {
                b.iter(|| {
                    black_box(plan_adjust(
                        black_box(100_000_000),
                        black_box(old),
                        black_box(*new_k),
                        &loads,
                    ))
                });
            },
        );
    }
    g.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("online_execute_4MB");
    g.sample_size(10);
    let data: Vec<u8> = (0..4_000_000).map(|i| (i % 251) as u8).collect();
    for &(old_k, new_k) in &[(1usize, 8usize), (8, 4)] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{old_k}to{new_k}")),
            &(old_k, new_k),
            |b, &(old_k, new_k)| {
                b.iter_batched(
                    || {
                        // Fresh cluster holding the file at old_k.
                        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(12));
                        let client = cluster.client();
                        let servers: Vec<usize> = (0..old_k).collect();
                        client.write(1, &data, &servers).unwrap();
                        let plan =
                            plan_adjust(data.len() as u64, &servers, new_k, &[0.0; 12]);
                        (cluster, plan)
                    },
                    |(cluster, plan)| {
                        execute_adjust(
                            1,
                            &plan,
                            cluster.master().as_ref(),
                            cluster.transport().as_ref(),
                        )
                        .unwrap();
                        black_box(cluster)
                    },
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_planning, bench_execution);
criterion_main!(benches);

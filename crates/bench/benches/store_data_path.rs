//! Criterion microbenchmarks for the store's data path: legacy copying
//! join vs the select-driven contiguous and zero-copy reads, and the
//! copying vs zero-copy writes (DESIGN.md §4.9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bytes::Bytes;
use spcache_bench::perf;
use spcache_store::{StoreCluster, StoreConfig};

const FILE_BYTES: usize = 8 << 20;
const WORKERS: usize = 8;

fn payload() -> Vec<u8> {
    (0..FILE_BYTES).map(|i| ((i * 31 + 7) % 256) as u8).collect()
}

fn bench_read_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_read_8MB");
    g.sample_size(20);
    let data = payload();
    for &k in &[4usize, 16] {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(WORKERS));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).map(|j| j % WORKERS).collect();
        client.write(1, &data, &servers).unwrap();
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("contiguous", k), &client, |b, client| {
            b.iter(|| black_box(client.read_quiet(1).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("scattered", k), &client, |b, client| {
            b.iter(|| black_box(client.read_scattered(1).unwrap().size()));
        });
    }
    g.finish();
}

fn bench_write_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_write_8MB");
    g.sample_size(20);
    let data = payload();
    let shared = Bytes::from(data.clone());
    let k = 16usize;
    let cluster = StoreCluster::spawn(StoreConfig::unthrottled(WORKERS));
    let client = cluster.client();
    let servers: Vec<usize> = (0..k).map(|j| j % WORKERS).collect();
    g.throughput(Throughput::Bytes(data.len() as u64));
    let mut id = 10u64;
    g.bench_function("copying", |b| {
        b.iter(|| {
            id += 1;
            client.write(id, &data, &servers).unwrap();
            client.delete(id).unwrap();
        });
    });
    g.bench_function("zero_copy", |b| {
        b.iter(|| {
            id += 1;
            client.write_bytes(id, shared.clone(), &servers).unwrap();
            client.delete(id).unwrap();
        });
    });
    g.finish();
}

fn bench_against_legacy(c: &mut Criterion) {
    // The headline comparison at bench scale, via the harness itself:
    // run_point exercises legacy vs new paths under identical placement.
    let mut g = c.benchmark_group("perf_point_quick");
    g.sample_size(10);
    g.bench_function("4MB_k4_w4", |b| {
        b.iter(|| {
            let point = perf::default_grid(true)[0];
            black_box(perf::run_point(point).read_speedup_scattered)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_read_paths,
    bench_write_paths,
    bench_against_legacy
);
criterion_main!(benches);

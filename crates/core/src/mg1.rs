//! M/G/1 queue moments for cache servers (paper Eqs. 5–6, 10–13).
//!
//! Each cache server `s` is modeled as an independent M/G/1 FIFO queue.
//! A request for file `i` forks a read to every server holding one of its
//! partitions, so server `s` sees Poisson arrivals at rate
//! `Λ_s = Σ_{i ∈ C_s} λ_i` (Eq. 5). Partition transfer delays are
//! exponential with mean `S_i / (k_i · B_s)`; the Pollaczek–Khinchin
//! transform then gives the mean and variance of the sojourn time
//! `Q_{i,s}` (queueing + service) that the fork-join bound consumes.

use crate::file::FileSet;
use crate::partition::PartitionMap;

/// Per-server aggregates of the queueing model.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerModel {
    /// Aggregate Poisson arrival rate `Λ_s` (Eq. 5).
    pub lambda: f64,
    /// Mean service time `μ_s` (Eq. 6) — seconds per partition read.
    pub mean_service: f64,
    /// Second moment of service time `Γ²_s` (Eq. 12).
    pub gamma2: f64,
    /// Third moment of service time `Γ³_s` (Eq. 13).
    pub gamma3: f64,
    /// Utilization `ρ_s = Λ_s · μ_s`.
    pub rho: f64,
}

impl ServerModel {
    /// Whether the queue is stable (`ρ < 1`); the P-K moments diverge
    /// otherwise.
    pub fn is_stable(&self) -> bool {
        self.rho < 1.0
    }

    /// Mean sojourn time for a partition of size `part_bytes` at bandwidth
    /// `bandwidth` (Eq. 10): transfer + P-K mean waiting time.
    /// Returns `f64::INFINITY` for an unstable queue.
    pub fn mean_sojourn(&self, part_bytes: f64, bandwidth: f64) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        part_bytes / bandwidth + self.lambda * self.gamma2 / (2.0 * (1.0 - self.rho))
    }

    /// Variance of the sojourn time (Eq. 11).
    /// Returns `f64::INFINITY` for an unstable queue.
    pub fn var_sojourn(&self, part_bytes: f64, bandwidth: f64) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let transfer = part_bytes / bandwidth;
        transfer * transfer
            + self.lambda * self.gamma3 / (3.0 * (1.0 - self.rho))
            + self.lambda * self.lambda * self.gamma2 * self.gamma2
                / (4.0 * (1.0 - self.rho) * (1.0 - self.rho))
    }
}

/// The full cluster queueing model: one [`ServerModel`] per server, derived
/// from a file set, request rates, a partition map and per-server
/// bandwidths.
///
/// # Examples
///
/// ```
/// use spcache_core::file::FileSet;
/// use spcache_core::mg1::ClusterModel;
/// use spcache_core::partition::PartitionMap;
///
/// // One 100 MB file split over two 1 Gbps servers, 4 reads/s.
/// let files = FileSet::uniform_size(100e6, &[1.0]);
/// let map = PartitionMap::new(vec![vec![0, 1]], 2);
/// let model = ClusterModel::build(&files, &[4.0], &map, &[125e6, 125e6]);
/// // Each partition is 50 MB → 0.4 s service, ρ = 4 × 0.4 = 1.6 … unstable!
/// assert!(!model.all_stable());
/// // Split 4 ways on 4 servers instead: ρ = 4 × 0.2 = 0.8, stable.
/// let map4 = PartitionMap::new(vec![vec![0, 1, 2, 3]], 4);
/// let model4 = ClusterModel::build(&files, &[4.0], &map4, &[125e6; 4]);
/// assert!(model4.all_stable());
/// ```
#[derive(Debug, Clone)]
pub struct ClusterModel {
    servers: Vec<ServerModel>,
    bandwidths: Vec<f64>,
}

impl ClusterModel {
    /// Builds the per-server moments.
    ///
    /// * `rates[i]` — request rate `λ_i` of file `i` (req/s),
    /// * `map` — the partition placement (defines `C_s` and `k_i`),
    /// * `bandwidths[s]` — bytes/s available at server `s`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or non-positive bandwidths.
    pub fn build(files: &FileSet, rates: &[f64], map: &PartitionMap, bandwidths: &[f64]) -> Self {
        assert_eq!(files.len(), rates.len(), "rates length mismatch");
        assert_eq!(files.len(), map.len(), "map length mismatch");
        assert_eq!(map.n_servers(), bandwidths.len(), "bandwidths mismatch");
        assert!(
            bandwidths.iter().all(|&b| b > 0.0),
            "bandwidths must be positive"
        );

        let n = map.n_servers();
        let mut lambda = vec![0.0f64; n];
        let mut m1 = vec![0.0f64; n]; // Σ λ_i · t_i
        let mut m2 = vec![0.0f64; n]; // Σ λ_i · 2 t_i²
        let mut m3 = vec![0.0f64; n]; // Σ λ_i · 6 t_i³

        for (i, meta) in files.iter() {
            let k = map.k_of(i) as f64;
            let part = meta.size_bytes / k;
            for &s in map.servers_of(i) {
                let t = part / bandwidths[s]; // mean transfer time at s
                lambda[s] += rates[i];
                m1[s] += rates[i] * t;
                // Exponential service: E[T²] = 2t², E[T³] = 6t³.
                m2[s] += rates[i] * 2.0 * t * t;
                m3[s] += rates[i] * 6.0 * t * t * t;
            }
        }

        let servers = (0..n)
            .map(|s| {
                if lambda[s] == 0.0 {
                    return ServerModel {
                        lambda: 0.0,
                        mean_service: 0.0,
                        gamma2: 0.0,
                        gamma3: 0.0,
                        rho: 0.0,
                    };
                }
                let mean_service = m1[s] / lambda[s];
                let gamma2 = m2[s] / lambda[s];
                let gamma3 = m3[s] / lambda[s];
                ServerModel {
                    lambda: lambda[s],
                    mean_service,
                    gamma2,
                    gamma3,
                    rho: lambda[s] * mean_service,
                }
            })
            .collect();

        ClusterModel {
            servers,
            bandwidths: bandwidths.to_vec(),
        }
    }

    /// The model for server `s`.
    pub fn server(&self, s: usize) -> &ServerModel {
        &self.servers[s]
    }

    /// Bandwidth of server `s`.
    pub fn bandwidth(&self, s: usize) -> f64 {
        self.bandwidths[s]
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Whether every server queue is stable.
    pub fn all_stable(&self) -> bool {
        self.servers.iter().all(ServerModel::is_stable)
    }

    /// Highest utilization across servers.
    pub fn max_rho(&self) -> f64 {
        self.servers.iter().map(|s| s.rho).fold(0.0, f64::max)
    }

    /// `(E[Q_{i,s}], Var[Q_{i,s}])` for each server holding a partition of
    /// file `i` — the inputs to the fork-join bound (Eq. 9).
    pub fn sojourn_moments(&self, files: &FileSet, map: &PartitionMap, i: usize) -> Vec<(f64, f64)> {
        let k = map.k_of(i) as f64;
        let part = files.get(i).size_bytes / k;
        map.servers_of(i)
            .iter()
            .map(|&s| {
                let m = &self.servers[s];
                let b = self.bandwidths[s];
                (m.mean_sojourn(part, b), m.var_sojourn(part, b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileSet;
    use crate::partition::PartitionMap;

    /// One file, one server: the degenerate M/M/1 case where all P-K
    /// formulas have closed forms to compare against.
    fn single_server_model(size: f64, rate: f64, bw: f64) -> (FileSet, ClusterModel, PartitionMap) {
        let files = FileSet::uniform_size(size, &[1.0]);
        let map = PartitionMap::new(vec![vec![0]], 1);
        let model = ClusterModel::build(&files, &[rate], &map, &[bw]);
        (files, model, map)
    }

    #[test]
    fn mm1_mean_sojourn_matches_closed_form() {
        // M/M/1: E[T] = 1/(μ − λ) with μ = 1/t.
        let t: f64 = 0.05; // 50 ms service
        let lambda = 10.0;
        let (files, model, map) = single_server_model(t * 1e9, lambda, 1e9);
        let s = model.server(0);
        assert!((s.mean_service - t).abs() < 1e-12);
        assert!((s.rho - 0.5).abs() < 1e-12);
        let (mean, var) = model.sojourn_moments(&files, &map, 0)[0];
        let closed = 1.0 / (1.0 / t - lambda);
        assert!(
            (mean - closed).abs() < 1e-9,
            "P-K mean {mean} vs M/M/1 {closed}"
        );
        // M/M/1 sojourn is exponential(μ−λ): Var = closed².
        assert!(
            (var - closed * closed).abs() / (closed * closed) < 1e-9,
            "P-K var {var} vs {}",
            closed * closed
        );
    }

    #[test]
    fn unstable_queue_reports_infinity() {
        let (files, model, map) = single_server_model(0.2 * 1e9, 10.0, 1e9); // rho = 2
        assert!(!model.all_stable());
        let (mean, var) = model.sojourn_moments(&files, &map, 0)[0];
        assert!(mean.is_infinite());
        assert!(var.is_infinite());
    }

    #[test]
    fn idle_server_zero_moments() {
        let files = FileSet::uniform_size(1e6, &[1.0]);
        let map = PartitionMap::new(vec![vec![0]], 2); // server 1 idle
        let model = ClusterModel::build(&files, &[1.0], &map, &[1e9, 1e9]);
        let idle = model.server(1);
        assert_eq!(idle.lambda, 0.0);
        assert_eq!(idle.rho, 0.0);
        assert!(idle.is_stable());
    }

    #[test]
    fn partitioning_reduces_utilization() {
        // One hot file, split across 4 servers vs cached whole: per-server
        // rho falls by 4x.
        let files = FileSet::uniform_size(100e6, &[1.0]);
        let rates = [8.0];
        let whole = PartitionMap::new(vec![vec![0]], 4);
        let split = PartitionMap::new(vec![vec![0, 1, 2, 3]], 4);
        let bw = [1e9; 4];
        let m_whole = ClusterModel::build(&files, &rates, &whole, &bw);
        let m_split = ClusterModel::build(&files, &rates, &split, &bw);
        let rho_whole = m_whole.server(0).rho;
        let rho_split = m_split.server(0).rho;
        assert!((rho_whole / rho_split - 4.0).abs() < 1e-9);
        // All four servers share the load equally.
        for s in 0..4 {
            assert!((m_split.server(s).rho - rho_split).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_moments_exponential_relations() {
        // With a single file class, Γ² = 2t² and Γ³ = 6t³ exactly.
        let t: f64 = 0.01;
        let (_, model, _) = single_server_model(t * 1e9, 1.0, 1e9);
        let s = model.server(0);
        assert!((s.gamma2 - 2.0 * t * t).abs() < 1e-15);
        assert!((s.gamma3 - 6.0 * t * t * t).abs() < 1e-18);
    }

    #[test]
    fn mixed_file_classes_weight_by_rate() {
        // Two files on one server: service moments are rate-weighted.
        let files = FileSet::from_parts(&[1e9, 2e9], &[0.5, 0.5]);
        let map = PartitionMap::new(vec![vec![0], vec![0]], 1);
        let model = ClusterModel::build(&files, &[3.0, 1.0], &map, &[1e9]);
        let s = model.server(0);
        // t1 = 1s at rate 3; t2 = 2s at rate 1 → mean = (3*1 + 1*2)/4
        assert!((s.mean_service - 1.25).abs() < 1e-12);
        assert_eq!(s.lambda, 4.0);
    }

    #[test]
    fn heterogeneous_bandwidths() {
        let files = FileSet::uniform_size(1e9, &[1.0]);
        let map = PartitionMap::new(vec![vec![0, 1]], 2);
        let model = ClusterModel::build(&files, &[1.0], &map, &[1e9, 2e9]);
        // Server 1 is twice as fast → half the mean service time.
        assert!(
            (model.server(0).mean_service / model.server(1).mean_service - 2.0).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "bandwidths must be positive")]
    fn zero_bandwidth_rejected() {
        let files = FileSet::uniform_size(1e6, &[1.0]);
        let map = PartitionMap::new(vec![vec![0]], 1);
        let _ = ClusterModel::build(&files, &[1.0], &map, &[0.0]);
    }
}

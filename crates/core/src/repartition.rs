//! Algorithm 2 — parallel repartition planning.
//!
//! Popularities drift, so SP-Cache periodically recomputes α and the
//! partition counts, then re-balances. Two ideas keep this cheap (§6.2):
//!
//! 1. **Touch only what changed** — files whose `k_i` is unchanged stay
//!    exactly where they are; their load is *recorded* so the greedy
//!    placement of moved files accounts for it.
//! 2. **Parallel execution on the servers** — each file that must move is
//!    assigned to an *executor* server that already holds one of its
//!    partitions (saving one network transfer of that partition); each
//!    server repartitions a disjoint set of files, so executors work in
//!    parallel and the wall-clock cost is the slowest server's share, not
//!    the sum (Fig. 16's two-orders-of-magnitude speedup).

use rand::Rng;

use spcache_workload::dist::uniform_usize;

use crate::file::{FileId, FileSet};
use crate::partition::PartitionMap;
use crate::placement::least_loaded;

/// One file's repartition work order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepartitionJob {
    /// File to reassemble and re-split.
    pub file: FileId,
    /// Server running the job (holds ≥ 1 old partition, so that partition
    /// needs no network hop during reassembly).
    pub executor: usize,
    /// Old partition locations (the executor pulls the others).
    pub old_servers: Vec<usize>,
    /// New partition locations chosen greedily (least-loaded first).
    pub new_servers: Vec<usize>,
}

impl RepartitionJob {
    /// Bytes that must cross the network to execute this job for a file of
    /// `size` bytes: pulling every old partition *not* already on the
    /// executor, plus pushing every new partition destined elsewhere.
    pub fn network_bytes(&self, size: f64) -> f64 {
        let old_k = self.old_servers.len() as f64;
        let pulls = self
            .old_servers
            .iter()
            .filter(|&&s| s != self.executor)
            .count() as f64;
        let new_k = self.new_servers.len() as f64;
        let pushes = self
            .new_servers
            .iter()
            .filter(|&&s| s != self.executor)
            .count() as f64;
        size * (pulls / old_k) + size * (pushes / new_k)
    }
}

/// The output of the planner.
#[derive(Debug, Clone)]
pub struct RepartitionPlan {
    /// Work orders, one per file whose partition count changed.
    pub jobs: Vec<RepartitionJob>,
    /// The resulting partition map (unchanged files keep their placement).
    pub new_map: PartitionMap,
    /// Files left untouched.
    pub unchanged: Vec<FileId>,
}

impl RepartitionPlan {
    /// Fraction of files that had to move (Fig. 17's y-axis).
    pub fn moved_fraction(&self) -> f64 {
        let total = self.jobs.len() + self.unchanged.len();
        if total == 0 {
            0.0
        } else {
            self.jobs.len() as f64 / total as f64
        }
    }

    /// Total bytes crossing the network, given file sizes.
    pub fn total_network_bytes(&self, files: &FileSet) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.network_bytes(files.get(j.file).size_bytes))
            .sum()
    }

    /// Jobs grouped by executor — the disjoint per-server work sets that
    /// run in parallel.
    pub fn jobs_by_executor(&self, n_servers: usize) -> Vec<Vec<&RepartitionJob>> {
        let mut out = vec![Vec::new(); n_servers];
        for j in &self.jobs {
            out[j.executor].push(j);
        }
        out
    }

    /// Wall-clock estimate of parallel execution: the slowest executor's
    /// byte volume divided by `bandwidth`, i.e. `max_s Σ_{jobs on s} bytes / B`.
    pub fn parallel_time_estimate(&self, files: &FileSet, n_servers: usize, bandwidth: f64) -> f64 {
        assert!(bandwidth > 0.0);
        let mut per_server = vec![0.0f64; n_servers];
        for j in &self.jobs {
            per_server[j.executor] += j.network_bytes(files.get(j.file).size_bytes);
        }
        per_server.iter().fold(0.0f64, |a, &b| a.max(b)) / bandwidth
    }

    /// Wall-clock estimate of the naive sequential scheme the paper
    /// compares against: *every* file (changed or not) is pulled to the
    /// master and redistributed in sequence over one `bandwidth` link.
    pub fn sequential_time_estimate(&self, files: &FileSet, bandwidth: f64) -> f64 {
        assert!(bandwidth > 0.0);
        // Collect + redistribute = 2 transfers of every byte.
        2.0 * files.total_bytes() / bandwidth
    }
}

/// Runs Algorithm 2.
///
/// * `old_map` — current placement (defines `k'_i`),
/// * `new_counts` — target `k_i` from the freshly tuned α,
/// * `rng` — used only to pick the executor among a moved file's old
///   servers (paper: "randomly selects a SP-Repartitioner in a cache
///   server containing partitions of that file").
///
/// # Examples
///
/// ```
/// use spcache_core::file::FileSet;
/// use spcache_core::partition::PartitionMap;
/// use spcache_core::repartition::plan_repartition;
/// use spcache_sim::Xoshiro256StarStar;
///
/// let files = FileSet::uniform_size(50e6, &[0.8, 0.2]);
/// let old = PartitionMap::new(vec![vec![0], vec![1]], 4);
/// let mut rng = Xoshiro256StarStar::seed(1);
/// // File 0 turned hot: split it 3 ways, leave file 1 alone.
/// let plan = plan_repartition(&files, &old, &[3, 1], &mut rng);
/// assert_eq!(plan.jobs.len(), 1);
/// assert_eq!(plan.unchanged, vec![1]);
/// assert_eq!(plan.new_map.k_of(0), 3);
/// ```
///
/// # Panics
///
/// Panics if lengths mismatch or any target count exceeds the cluster
/// size.
pub fn plan_repartition<R: Rng + ?Sized>(
    files: &FileSet,
    old_map: &PartitionMap,
    new_counts: &[usize],
    rng: &mut R,
) -> RepartitionPlan {
    assert_eq!(files.len(), old_map.len(), "map length mismatch");
    assert_eq!(files.len(), new_counts.len(), "counts length mismatch");
    let n = old_map.n_servers();
    assert!(
        new_counts.iter().all(|&k| k >= 1 && k <= n),
        "target partition counts must be in [1, N]"
    );

    // Lines 5–9: start from the load contributed by unchanged files.
    // Load here is measured in expected bytes served: L_i / k_i per server.
    let mut server_load = vec![0.0f64; n];
    let mut unchanged = Vec::new();
    let mut moved: Vec<FileId> = Vec::new();
    for (i, meta) in files.iter() {
        let k_old = old_map.k_of(i);
        if k_old == new_counts[i] {
            let per = meta.load() / k_old as f64;
            for &s in old_map.servers_of(i) {
                server_load[s] += per;
            }
            unchanged.push(i);
        } else {
            moved.push(i);
        }
    }

    // Plan moved files hottest-first so the greedy placement spreads the
    // heaviest loads before the slack fills up.
    moved.sort_by(|&a, &b| {
        files
            .get(b)
            .load()
            .partial_cmp(&files.get(a).load())
            .expect("no NaN loads")
    });

    let mut new_placements: Vec<Option<Vec<usize>>> = vec![None; files.len()];
    for &i in &unchanged {
        new_placements[i] = Some(old_map.servers_of(i).to_vec());
    }

    let mut jobs = Vec::with_capacity(moved.len());
    for &i in &moved {
        let k_new = new_counts[i];
        // Lines 12–15: the k least-loaded servers, one partition each.
        let targets = least_loaded(k_new, &server_load);
        let per = files.get(i).load() / k_new as f64;
        for &s in &targets {
            server_load[s] += per;
        }
        // Executor: a random server holding one of the old partitions.
        let old_servers = old_map.servers_of(i).to_vec();
        let executor = old_servers[uniform_usize(rng, old_servers.len())];
        jobs.push(RepartitionJob {
            file: i,
            executor,
            old_servers,
            new_servers: targets.clone(),
        });
        new_placements[i] = Some(targets);
    }

    let new_map = PartitionMap::new(
        new_placements
            .into_iter()
            .map(|p| p.expect("every file placed"))
            .collect(),
        n,
    );

    RepartitionPlan {
        jobs,
        new_map,
        unchanged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_metrics::LoadTracker;
    use spcache_sim::Xoshiro256StarStar;
    use spcache_workload::zipf::zipf_popularities;

    use crate::placement::random_partition_map;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn unchanged_files_stay_put() {
        let files = FileSet::uniform_size(50e6, &[0.5, 0.3, 0.2]);
        let old = PartitionMap::new(vec![vec![0, 1], vec![2], vec![3]], 4);
        let mut r = rng(1);
        let plan = plan_repartition(&files, &old, &[2, 1, 1], &mut r);
        assert!(plan.jobs.is_empty());
        assert_eq!(plan.unchanged, vec![0, 1, 2]);
        assert_eq!(plan.new_map.servers_of(0), old.servers_of(0));
        assert_eq!(plan.moved_fraction(), 0.0);
    }

    #[test]
    fn changed_files_get_jobs_with_valid_executors() {
        let files = FileSet::uniform_size(50e6, &[0.6, 0.4]);
        let old = PartitionMap::new(vec![vec![0], vec![1]], 4);
        let mut r = rng(2);
        let plan = plan_repartition(&files, &old, &[3, 1], &mut r);
        assert_eq!(plan.jobs.len(), 1);
        let job = &plan.jobs[0];
        assert_eq!(job.file, 0);
        assert!(job.old_servers.contains(&job.executor));
        assert_eq!(job.new_servers.len(), 3);
        assert_eq!(plan.new_map.k_of(0), 3);
        assert_eq!(plan.new_map.k_of(1), 1);
    }

    #[test]
    fn greedy_placement_avoids_loaded_servers() {
        // File 0 (unchanged, heavy) sits on server 0; the moved file must
        // prefer the other servers.
        let files = FileSet::uniform_size(100e6, &[0.9, 0.1]);
        let old = PartitionMap::new(vec![vec![0], vec![0]], 4);
        let mut r = rng(3);
        let plan = plan_repartition(&files, &old, &[1, 2], &mut r);
        let job = &plan.jobs[0];
        assert_eq!(job.file, 1);
        assert!(
            !job.new_servers.contains(&0),
            "moved file must avoid the hot server, got {:?}",
            job.new_servers
        );
    }

    #[test]
    fn network_bytes_accounting() {
        let job = RepartitionJob {
            file: 0,
            executor: 1,
            old_servers: vec![0, 1],       // pulls half the file from 0
            new_servers: vec![1, 2, 3],    // pushes two thirds out
        };
        let b = job.network_bytes(60.0);
        // pulls: 1 of 2 partitions = 30; pushes: 2 of 3 partitions = 40.
        assert!((b - 70.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_job_network_bytes() {
        // File merged from 2 partitions into 1 on the executor: pulls one
        // old partition, pushes nothing.
        let job = RepartitionJob {
            file: 0,
            executor: 0,
            old_servers: vec![0, 3],
            new_servers: vec![0],
        };
        assert!((job.network_bytes(80.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_beats_sequential_by_orders_of_magnitude() {
        // 300 files under a Zipf shift: only the hot head moves, executors
        // parallelize, and the estimate must beat the sequential scheme by
        // >= 10x (the paper reports ~100x).
        let n_files = 300;
        let n_servers = 30;
        let pops = zipf_popularities(n_files, 1.1);
        let files = FileSet::uniform_size(50e6, &pops);
        let alpha = 1e-7;
        let mut r = rng(4);
        let old = random_partition_map(&files, alpha, n_servers, &mut r);

        // Popularity shift: reverse the ranks (drastic).
        let mut shifted: Vec<f64> = pops.clone();
        shifted.reverse();
        let shifted_files = FileSet::uniform_size(50e6, &shifted);
        let new_counts: Vec<usize> = shifted_files
            .partition_counts(alpha)
            .into_iter()
            .map(|k| k.min(n_servers))
            .collect();

        let plan = plan_repartition(&shifted_files, &old, &new_counts, &mut r);
        let bw = 125e6;
        let par = plan.parallel_time_estimate(&shifted_files, n_servers, bw);
        let seq = plan.sequential_time_estimate(&shifted_files, bw);
        assert!(
            seq / par.max(1e-9) > 10.0,
            "parallel {par}s vs sequential {seq}s: speedup too small"
        );
    }

    #[test]
    fn moved_fraction_shrinks_with_population() {
        // Fig. 17: with more files (same Zipf), a smaller fraction needs
        // repartitioning after a shift, because the cold tail dominates.
        let mut fractions = Vec::new();
        for &n_files in &[100usize, 350] {
            let pops = zipf_popularities(n_files, 1.1);
            let files = FileSet::uniform_size(50e6, &pops);
            let alpha = 2e-7;
            let mut r = rng(5);
            let old = random_partition_map(&files, alpha, 30, &mut r);
            let mut shifted = pops.clone();
            // Deterministic shuffle.
            let mut sr = rng(99);
            for i in (1..shifted.len()).rev() {
                let j = spcache_workload::dist::uniform_usize(&mut sr, i + 1);
                shifted.swap(i, j);
            }
            let sf = FileSet::uniform_size(50e6, &shifted);
            let counts: Vec<usize> = sf
                .partition_counts(alpha)
                .into_iter()
                .map(|k| k.min(30))
                .collect();
            let plan = plan_repartition(&sf, &old, &counts, &mut r);
            fractions.push(plan.moved_fraction());
        }
        assert!(
            fractions[1] <= fractions[0],
            "moved fraction should shrink: {fractions:?}"
        );
    }

    #[test]
    fn load_balance_improves_after_greedy_plan() {
        // Fig. 18's claim: greedy placement yields a balanced load.
        let pops = zipf_popularities(200, 1.1);
        let files = FileSet::uniform_size(50e6, &pops);
        let mut r = rng(6);
        // Old map: everything unsplit on few servers (bad balance).
        let old = PartitionMap::new(
            (0..200).map(|i| vec![i % 5]).collect::<Vec<_>>(),
            30,
        );
        let alpha = 3e-7;
        let counts: Vec<usize> = files
            .partition_counts(alpha)
            .into_iter()
            .map(|k| k.min(30))
            .collect();
        let plan = plan_repartition(&files, &old, &counts, &mut r);

        let eta = |map: &PartitionMap| {
            let mut lt = LoadTracker::new(30);
            for (i, meta) in files.iter() {
                let per = meta.load() / map.k_of(i) as f64;
                for &s in map.servers_of(i) {
                    lt.add(s, per);
                }
            }
            lt.imbalance_factor()
        };
        assert!(
            eta(&plan.new_map) < eta(&old),
            "eta must improve: {} -> {}",
            eta(&old),
            eta(&plan.new_map)
        );
    }

    #[test]
    fn jobs_by_executor_partitions_jobs() {
        let files = FileSet::uniform_size(10e6, &zipf_popularities(40, 1.1));
        let mut r = rng(7);
        let old = random_partition_map(&files, 0.0, 10, &mut r); // all k=1
        let counts: Vec<usize> = (0..40).map(|i| if i < 10 { 3 } else { 1 }).collect();
        let plan = plan_repartition(&files, &old, &counts, &mut r);
        assert_eq!(plan.jobs.len(), 10);
        let grouped = plan.jobs_by_executor(10);
        let total: usize = grouped.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }
}

//! The file/load model.
//!
//! SP-Cache measures the *expected load* of file `i` as `L_i = S_i · P_i`
//! — its size times its access probability (§5.1). Everything downstream
//! (partition counts, the latency bound, Theorem 1) is a function of the
//! loads.

use serde::{Deserialize, Serialize};

/// Index of a file in a [`FileSet`].
pub type FileId = usize;

/// Static metadata for one cached file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileMeta {
    /// File size in bytes.
    pub size_bytes: f64,
    /// Access probability `P_i` (Eq. 4: `λ_i / Σ_j λ_j`).
    pub popularity: f64,
}

impl FileMeta {
    /// Creates metadata; sizes must be positive and popularity a
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics on non-positive size or popularity outside `[0, 1]`.
    pub fn new(size_bytes: f64, popularity: f64) -> Self {
        assert!(size_bytes > 0.0, "file size must be positive");
        assert!(
            (0.0..=1.0).contains(&popularity),
            "popularity must be a probability, got {popularity}"
        );
        FileMeta {
            size_bytes,
            popularity,
        }
    }

    /// Expected load `L_i = S_i · P_i` (bytes of expected transfer per
    /// request into the cluster).
    #[inline]
    pub fn load(&self) -> f64 {
        self.size_bytes * self.popularity
    }
}

/// An immutable collection of file metadata with the derived quantities
/// the algorithms need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileSet {
    files: Vec<FileMeta>,
}

impl FileSet {
    /// Wraps a metadata vector.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn new(files: Vec<FileMeta>) -> Self {
        assert!(!files.is_empty(), "a FileSet needs at least one file");
        FileSet { files }
    }

    /// Convenience: uniform `size_bytes` for every file, popularity given
    /// per file (the EC2 experiments use equal-sized files).
    pub fn uniform_size(size_bytes: f64, popularities: &[f64]) -> Self {
        FileSet::new(
            popularities
                .iter()
                .map(|&p| FileMeta::new(size_bytes, p))
                .collect(),
        )
    }

    /// Paired sizes and popularities.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn from_parts(sizes: &[f64], popularities: &[f64]) -> Self {
        assert_eq!(sizes.len(), popularities.len(), "length mismatch");
        FileSet::new(
            sizes
                .iter()
                .zip(popularities)
                .map(|(&s, &p)| FileMeta::new(s, p))
                .collect(),
        )
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Metadata of file `i`.
    pub fn get(&self, i: FileId) -> &FileMeta {
        &self.files[i]
    }

    /// Iterator over `(FileId, &FileMeta)`.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &FileMeta)> {
        self.files.iter().enumerate()
    }

    /// All loads `L_i`.
    pub fn loads(&self) -> Vec<f64> {
        self.files.iter().map(FileMeta::load).collect()
    }

    /// The largest load `L_max = max_i L_i` (drives Algorithm 1's initial
    /// α and Theorem 1's asymptotics).
    pub fn max_load(&self) -> f64 {
        self.files
            .iter()
            .map(FileMeta::load)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of loads `Σ L_i`.
    pub fn total_load(&self) -> f64 {
        self.files.iter().map(FileMeta::load).sum()
    }

    /// Total bytes across all files (the redundancy-free cache footprint).
    pub fn total_bytes(&self) -> f64 {
        self.files.iter().map(|f| f.size_bytes).sum()
    }

    /// Per-file request rates `λ_i = P_i · Λ` for aggregate rate `Λ`.
    pub fn request_rates(&self, lambda_total: f64) -> Vec<f64> {
        assert!(lambda_total >= 0.0);
        self.files
            .iter()
            .map(|f| f.popularity * lambda_total)
            .collect()
    }

    /// Partition counts `k_i = ceil(α · L_i)` for every file (Eq. 1),
    /// clamped to at least 1. Callers that must respect the cluster size
    /// clamp to `N` separately (a file cannot have more partitions than
    /// servers).
    pub fn partition_counts(&self, alpha: f64) -> Vec<usize> {
        assert!(alpha >= 0.0, "scale factor must be non-negative");
        self.files
            .iter()
            .map(|f| crate::partition::partition_count(alpha, f.load()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_size_times_popularity() {
        let f = FileMeta::new(100.0, 0.25);
        assert_eq!(f.load(), 25.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = FileMeta::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn popularity_above_one_rejected() {
        let _ = FileMeta::new(1.0, 1.5);
    }

    #[test]
    fn uniform_size_constructor() {
        let fs = FileSet::uniform_size(10.0, &[0.5, 0.3, 0.2]);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs.get(0).size_bytes, 10.0);
        assert!((fs.total_load() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn from_parts_pairs_up() {
        let fs = FileSet::from_parts(&[10.0, 20.0], &[0.6, 0.4]);
        assert_eq!(fs.get(1).size_bytes, 20.0);
        assert_eq!(fs.get(1).popularity, 0.4);
        assert_eq!(fs.max_load(), 8.0);
    }

    #[test]
    fn request_rates_scale() {
        let fs = FileSet::uniform_size(1.0, &[0.75, 0.25]);
        let r = fs.request_rates(8.0);
        assert_eq!(r, vec![6.0, 2.0]);
    }

    #[test]
    fn partition_counts_follow_eq1() {
        // alpha * L: 0.02*200=4, 0.02*50=1, 0.02*10=0.2→ceil≥1
        let fs = FileSet::from_parts(&[1000.0, 1000.0, 1000.0], &[0.2, 0.05, 0.01]);
        let ks = fs.partition_counts(0.02);
        assert_eq!(ks, vec![4, 1, 1]);
    }

    #[test]
    fn alpha_zero_means_no_splitting() {
        let fs = FileSet::uniform_size(100.0, &[0.9, 0.1]);
        assert_eq!(fs.partition_counts(0.0), vec![1, 1]);
    }

    #[test]
    fn total_bytes_ignores_popularity() {
        let fs = FileSet::from_parts(&[5.0, 7.0], &[0.0, 1.0]);
        assert_eq!(fs.total_bytes(), 12.0);
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn empty_fileset_rejected() {
        let _ = FileSet::new(vec![]);
    }
}

//! Selective partition (paper Eq. 1).
//!
//! `k_i = ceil(α · L_i)`, clamped below by 1 (a file always exists as at
//! least one partition). With this rule every partition carries load
//! `L_i / k_i ≈ 1/α`, so partitions are interchangeable load units and
//! *random* placement suffices for balance (§5.1) — the insight that lets
//! SP-Cache drop both replicas and parity.

use serde::{Deserialize, Serialize};

use crate::file::{FileId, FileSet};

/// The partition count for a single file: `max(1, ceil(α · load))`.
///
/// # Examples
///
/// ```
/// use spcache_core::partition::partition_count;
///
/// assert_eq!(partition_count(0.0, 123.0), 1); // α=0 → never split
/// assert_eq!(partition_count(0.5, 7.9), 4);   // ceil(3.95)
/// assert_eq!(partition_count(1.0, 3.0), 3);
/// ```
#[inline]
pub fn partition_count(alpha: f64, load: f64) -> usize {
    debug_assert!(alpha >= 0.0 && load >= 0.0);
    let k = (alpha * load).ceil();
    if k < 1.0 {
        1
    } else {
        k as usize
    }
}

/// Partition counts for every file, additionally clamped to the number of
/// servers (a file cannot occupy more servers than exist; the paper's
/// Algorithm 1 starts the hottest file at `N/3` partitions, well below the
/// clamp).
pub fn partition_counts_clamped(files: &FileSet, alpha: f64, n_servers: usize) -> Vec<usize> {
    assert!(n_servers > 0);
    files
        .partition_counts(alpha)
        .into_iter()
        .map(|k| k.min(n_servers))
        .collect()
}

/// A complete partition assignment: for each file, the servers holding its
/// partitions (partition `j` of file `i` lives on `map[i][j]`).
///
/// Invariant: within one file, servers are distinct (the paper: "no two
/// partitions of a file are cached on the same server").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    servers_per_file: Vec<Vec<usize>>,
    n_servers: usize,
}

impl PartitionMap {
    /// Builds a map, validating the distinct-servers invariant.
    ///
    /// # Panics
    ///
    /// Panics if any file has zero partitions, a server index out of
    /// range, or duplicate servers.
    pub fn new(servers_per_file: Vec<Vec<usize>>, n_servers: usize) -> Self {
        for (i, servers) in servers_per_file.iter().enumerate() {
            assert!(!servers.is_empty(), "file {i} has no partitions");
            let mut seen = vec![false; n_servers];
            for &s in servers {
                assert!(s < n_servers, "file {i}: server {s} out of range");
                assert!(!seen[s], "file {i}: duplicate server {s}");
                seen[s] = true;
            }
        }
        PartitionMap {
            servers_per_file,
            n_servers,
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.servers_per_file.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.servers_per_file.is_empty()
    }

    /// Cluster size.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Servers holding file `i`'s partitions.
    pub fn servers_of(&self, i: FileId) -> &[usize] {
        &self.servers_per_file[i]
    }

    /// Partition count `k_i`.
    pub fn k_of(&self, i: FileId) -> usize {
        self.servers_per_file[i].len()
    }

    /// All partition counts.
    pub fn partition_counts(&self) -> Vec<usize> {
        self.servers_per_file.iter().map(Vec::len).collect()
    }

    /// For each server, the files with a partition there (the `C_s` sets of
    /// the queueing model).
    pub fn files_per_server(&self) -> Vec<Vec<FileId>> {
        let mut out = vec![Vec::new(); self.n_servers];
        for (i, servers) in self.servers_per_file.iter().enumerate() {
            for &s in servers {
                out[s].push(i);
            }
        }
        out
    }

    /// Number of partitions per server (placement balance check).
    pub fn partitions_per_server(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.n_servers];
        for servers in &self.servers_per_file {
            for &s in servers {
                out[s] += 1;
            }
        }
        out
    }

    /// Replaces file `i`'s placement (used by the repartition executor).
    ///
    /// # Panics
    ///
    /// Panics if the new placement violates the invariants.
    pub fn set_servers_of(&mut self, i: FileId, servers: Vec<usize>) {
        assert!(!servers.is_empty(), "file {i} must keep >= 1 partition");
        let mut seen = vec![false; self.n_servers];
        for &s in &servers {
            assert!(s < self.n_servers, "server {s} out of range");
            assert!(!seen[s], "duplicate server {s}");
            seen[s] = true;
        }
        self.servers_per_file[i] = servers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileSet;

    #[test]
    fn count_monotone_in_alpha() {
        let load = 37.5;
        let mut prev = 0;
        for step in 0..100 {
            let alpha = step as f64 * 0.05;
            let k = partition_count(alpha, load);
            assert!(k >= prev, "k must not decrease as alpha grows");
            prev = k;
        }
    }

    #[test]
    fn count_monotone_in_load() {
        let alpha = 0.7;
        let mut prev = 0;
        for load in 0..200 {
            let k = partition_count(alpha, load as f64 * 0.5);
            assert!(k >= prev);
            prev = k;
        }
    }

    #[test]
    fn clamped_counts_respect_cluster_size() {
        let fs = FileSet::uniform_size(1000.0, &[0.9, 0.1]);
        let ks = partition_counts_clamped(&fs, 1.0, 30);
        assert_eq!(ks[0], 30); // ceil(900) clamped
        assert_eq!(ks[1], 30); // ceil(100) clamped
        let ks = partition_counts_clamped(&fs, 0.01, 30);
        assert_eq!(ks, vec![9, 1]);
    }

    #[test]
    fn map_queries() {
        let m = PartitionMap::new(vec![vec![0, 2], vec![1]], 3);
        assert_eq!(m.k_of(0), 2);
        assert_eq!(m.servers_of(1), &[1]);
        assert_eq!(m.partition_counts(), vec![2, 1]);
        assert_eq!(m.partitions_per_server(), vec![1, 1, 1]);
        let fps = m.files_per_server();
        assert_eq!(fps[0], vec![0]);
        assert_eq!(fps[1], vec![1]);
        assert_eq!(fps[2], vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate server")]
    fn duplicate_server_rejected() {
        let _ = PartitionMap::new(vec![vec![1, 1]], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = PartitionMap::new(vec![vec![3]], 3);
    }

    #[test]
    #[should_panic(expected = "no partitions")]
    fn empty_file_rejected() {
        let _ = PartitionMap::new(vec![vec![]], 3);
    }

    #[test]
    fn set_servers_replaces() {
        let mut m = PartitionMap::new(vec![vec![0]], 4);
        m.set_servers_of(0, vec![1, 2, 3]);
        assert_eq!(m.k_of(0), 3);
    }
}

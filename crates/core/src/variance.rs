//! Theorem 1 — per-server load variance of SP-Cache vs EC-Cache.
//!
//! The degree of load imbalance is measured by `Var(X)`, where `X` is the
//! total load a random server carries. With independent placement,
//! `Var(X) = Σ_i Var(X_i)` and file `i` contributes
//!
//! * SP-Cache: `X_i = a_i · L_i/k_i` with `a_i ~ Bernoulli(k_i/N)`,
//! * EC-Cache: `a_i ~ Bernoulli((k+1)/N)` (late binding reads `k+1` of the
//!   `n` placed shards) with per-shard load `L_i/k`.
//!
//! Theorem 1: `Var(X^EC)/Var(X^SP) → (α/k) · ΣL_i²/ΣL_i` as `N → ∞`, which
//! under heavy skew approaches `(α/k)·L_max` — SP-Cache wins by
//! `O(L_max)`.

use rand::Rng;

use spcache_workload::dist::uniform_usize;

use crate::file::FileSet;

/// Exact per-server load variance under SP-Cache with scale factor α
/// (finite-N Bernoulli form, before the paper's `k_i/N ≪ 1` approximation).
pub fn sp_variance(files: &FileSet, alpha: f64, n_servers: usize) -> f64 {
    let n = n_servers as f64;
    files
        .iter()
        .map(|(_, f)| {
            let load = f.load();
            let k = crate::partition::partition_count(alpha, load).min(n_servers) as f64;
            let p = k / n;
            (load / k).powi(2) * p * (1.0 - p)
        })
        .sum()
}

/// Exact per-server load variance under EC-Cache with a `(k, n_code)`
/// code: each request is served by `k+1` of the `N` servers (late
/// binding), each serving a shard of `L_i/k`.
pub fn ec_variance(files: &FileSet, k: usize, n_servers: usize) -> f64 {
    let n = n_servers as f64;
    let kf = k as f64;
    files
        .iter()
        .map(|(_, f)| {
            let load = f.load();
            let p = ((kf + 1.0) / n).min(1.0);
            (load / kf).powi(2) * p * (1.0 - p)
        })
        .sum()
}

/// The asymptotic ratio of Theorem 1: `(α/k) · ΣL² / ΣL`.
pub fn theorem1_ratio(files: &FileSet, alpha: f64, k: usize) -> f64 {
    let loads = files.loads();
    let sum_l: f64 = loads.iter().sum();
    let sum_l2: f64 = loads.iter().map(|l| l * l).sum();
    alpha / k as f64 * sum_l2 / sum_l
}

/// Monte-Carlo estimate of the per-server load variance for SP-Cache:
/// place partitions randomly `trials` times and measure the empirical
/// variance of one server's load (server 0 — exchangeable).
pub fn sp_variance_monte_carlo<R: Rng + ?Sized>(
    files: &FileSet,
    alpha: f64,
    n_servers: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let ks: Vec<usize> = files
        .partition_counts(alpha)
        .into_iter()
        .map(|k| k.min(n_servers))
        .collect();
    let loads = files.loads();
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    for _ in 0..trials {
        let mut x = 0.0;
        for (i, &k) in ks.iter().enumerate() {
            // P(server 0 holds one of the k distinct slots) = k/N; sampling
            // a single Bernoulli per file is equivalent to the full
            // placement draw as far as server 0's load is concerned.
            if uniform_usize(rng, n_servers) < k {
                x += loads[i] / k as f64;
            }
        }
        sum += x;
        sum2 += x * x;
    }
    let mean = sum / trials as f64;
    sum2 / trials as f64 - mean * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;
    use spcache_workload::zipf::zipf_popularities;

    fn skewed_files(n: usize) -> FileSet {
        FileSet::uniform_size(100e6, &zipf_popularities(n, 1.1))
    }

    #[test]
    fn sp_beats_ec_under_skew() {
        // Paper setting: EC (10,14) spreads every file over k+1 = 11 of 30
        // servers; a tuned SP-Cache spreads the hottest file over *all*
        // servers (Algorithm 1 inflates until balance), which is where the
        // O(L_max) advantage comes from.
        let files = skewed_files(500);
        let alpha = 30.0 / files.max_load();
        let v_sp = sp_variance(&files, alpha, 30);
        let v_ec = ec_variance(&files, 10, 30);
        assert!(
            v_ec > 1.3 * v_sp,
            "EC variance {v_ec} should clearly exceed SP variance {v_sp}"
        );
    }

    #[test]
    fn ratio_grows_with_skew() {
        // Theorem 1: the advantage is O(L_max) — more skew, more win.
        let mild = FileSet::uniform_size(100e6, &zipf_popularities(300, 0.6));
        let harsh = FileSet::uniform_size(100e6, &zipf_popularities(300, 1.4));
        let alpha_m = 10.0 / mild.max_load();
        let alpha_h = 10.0 / harsh.max_load();
        let r_mild = ec_variance(&mild, 10, 100) / sp_variance(&mild, alpha_m, 100);
        let r_harsh = ec_variance(&harsh, 10, 100) / sp_variance(&harsh, alpha_h, 100);
        assert!(
            r_harsh > r_mild,
            "ratio should grow with skew: mild {r_mild} vs harsh {r_harsh}"
        );
    }

    #[test]
    fn exact_ratio_approaches_theorem1_for_large_n() {
        // As N grows (N >> k_i), the finite-N ratio converges to the
        // asymptotic expression. Uniform loads make k_i = alpha*L exact.
        let files = FileSet::uniform_size(1e6, &vec![1.0 / 64.0; 64]);
        let load = files.get(0).load();
        let alpha = 8.0 / load; // k_i = 8 for every file
        let k_ec = 8usize;
        // The paper's final step approximates (k+1)/k ≈ 1; compare against
        // the expression *before* that approximation.
        let asymptotic =
            theorem1_ratio(&files, alpha, k_ec) * (k_ec as f64 + 1.0) / k_ec as f64;
        let exact = |n: usize| ec_variance(&files, k_ec, n) / sp_variance(&files, alpha, n);
        let err_small = (exact(50) / asymptotic - 1.0).abs();
        let err_large = (exact(5000) / asymptotic - 1.0).abs();
        assert!(
            err_large < err_small,
            "convergence failed: err(50) = {err_small}, err(5000) = {err_large}"
        );
        assert!(err_large < 0.05, "asymptotic error {err_large} too big");
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let files = skewed_files(100);
        let alpha = 5.0 / files.max_load();
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let mc = sp_variance_monte_carlo(&files, alpha, 30, 60_000, &mut rng);
        let analytic = sp_variance(&files, alpha, 30);
        assert!(
            (mc - analytic).abs() / analytic < 0.1,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn variance_zero_when_every_server_holds_everything() {
        // k_i = N → every server always holds a partition: p = 1, Var = 0.
        let files = FileSet::uniform_size(1e6, &[1.0]);
        let alpha = 1e9; // forces clamp to N
        assert_eq!(sp_variance(&files, alpha, 10), 0.0);
    }

    #[test]
    fn finer_partitioning_reduces_sp_variance() {
        let files = skewed_files(200);
        let a1 = 3.0 / files.max_load();
        let a2 = 12.0 / files.max_load();
        assert!(sp_variance(&files, a2, 100) < sp_variance(&files, a1, 100));
    }
}

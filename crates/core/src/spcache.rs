//! The SP-Cache scheme: selective partition as a [`CachingScheme`].
//!
//! * **Layout** — file `i` is split into `k_i = ceil(α L_i)` equal
//!   partitions on distinct random servers; no redundancy at all.
//! * **Read** — fetch every partition in parallel, wait for all of them
//!   (the fork-join), reassemble for free (a memcpy, no decode).
//! * **Write** — a new file goes whole to one random server (§6.1: "cold
//!   files dominate in population"); it gets split later when repartition
//!   notices it turned hot.

use spcache_sim::Xoshiro256StarStar;
use spcache_workload::dist::uniform_usize;

use crate::file::{FileId, FileSet};
use crate::partition::partition_counts_clamped;
use crate::placement::random_distinct;
use crate::scheme::{CachingScheme, Chunk, FileLayout, Layout, ReadPlan, WritePlan};
use crate::tuner::{tune_scale_factor_hetero, Tuned, TunerConfig};

/// SP-Cache with a fixed scale factor α.
#[derive(Debug, Clone)]
pub struct SpCache {
    alpha: f64,
}

impl SpCache {
    /// A scheme with an explicit scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or NaN.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha >= 0.0 && !alpha.is_nan(), "invalid scale factor");
        SpCache { alpha }
    }

    /// Runs Algorithm 1 and returns the tuned scheme together with the
    /// tuning diagnostics.
    pub fn tuned(
        files: &FileSet,
        n_servers: usize,
        bandwidth: f64,
        lambda_total: f64,
        cfg: &TunerConfig,
    ) -> (Self, Tuned) {
        let tuned = tune_scale_factor_hetero(
            files,
            &vec![bandwidth; n_servers],
            lambda_total,
            cfg,
        );
        (SpCache { alpha: tuned.alpha }, tuned)
    }

    /// The configured scale factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The partition counts this scheme assigns, clamped to the cluster.
    pub fn partition_counts(&self, files: &FileSet, n_servers: usize) -> Vec<usize> {
        partition_counts_clamped(files, self.alpha, n_servers)
    }
}

impl CachingScheme for SpCache {
    fn name(&self) -> String {
        format!("sp-cache(α={:.3e})", self.alpha)
    }

    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout {
        let ks = self.partition_counts(files, n_servers);
        let per_file = files
            .iter()
            .zip(&ks)
            .map(|((_, meta), &k)| {
                let part = meta.size_bytes / k as f64;
                let servers = random_distinct(k, n_servers, rng);
                FileLayout {
                    chunks: servers
                        .into_iter()
                        .map(|server| Chunk {
                            server,
                            bytes: part,
                        })
                        .collect(),
                }
            })
            .collect();
        Layout::new(per_file, n_servers)
    }

    fn read_plan(
        &self,
        file: FileId,
        _files: &FileSet,
        layout: &Layout,
        _rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan {
        ReadPlan::all_of(&layout.file(file).chunks)
    }

    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan {
        // §6.1: whole file to one random server, no splitting on write.
        WritePlan {
            writes: vec![Chunk {
                server: uniform_usize(rng, n_servers),
                bytes: files.get(file).size_bytes,
            }],
            pre_cost: 0.0,
        }
    }
}

/// SP-Cache variant that *splits on write* using the provided popularity
/// (used for the Fig. 22 write-latency comparison where SP-Cache "enforces
/// file splitting upon write based on the provided file popularity").
#[derive(Debug, Clone)]
pub struct SpCacheSplitWrite {
    inner: SpCache,
}

impl SpCacheSplitWrite {
    /// Wraps an [`SpCache`] configuration.
    pub fn new(alpha: f64) -> Self {
        SpCacheSplitWrite {
            inner: SpCache::with_alpha(alpha),
        }
    }
}

impl CachingScheme for SpCacheSplitWrite {
    fn name(&self) -> String {
        format!("sp-cache-split-write(α={:.3e})", self.inner.alpha)
    }

    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout {
        self.inner.build_layout(files, n_servers, rng)
    }

    fn read_plan(
        &self,
        file: FileId,
        files: &FileSet,
        layout: &Layout,
        rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan {
        self.inner.read_plan(file, files, layout, rng)
    }

    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan {
        let meta = files.get(file);
        let k = crate::partition::partition_count(self.inner.alpha, meta.load()).min(n_servers);
        let part = meta.size_bytes / k as f64;
        let servers = random_distinct(k, n_servers, rng);
        WritePlan {
            writes: servers
                .into_iter()
                .map(|server| Chunk {
                    server,
                    bytes: part,
                })
                .collect(),
            pre_cost: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_workload::zipf::zipf_popularities;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn files() -> FileSet {
        FileSet::uniform_size(100e6, &zipf_popularities(100, 1.05))
    }

    #[test]
    fn layout_is_redundancy_free() {
        let f = files();
        let s = SpCache::with_alpha(1e-7);
        let mut r = rng(1);
        let layout = s.build_layout(&f, 30, &mut r);
        assert!(layout.redundancy(&f).abs() < 1e-9);
    }

    #[test]
    fn layout_partitions_match_eq1() {
        let f = files();
        let s = SpCache::with_alpha(1e-7);
        let mut r = rng(2);
        let layout = s.build_layout(&f, 30, &mut r);
        let ks = s.partition_counts(&f, 30);
        for (i, &k) in ks.iter().enumerate() {
            assert_eq!(layout.file(i).chunks.len(), k, "file {i}");
            // Equal-sized partitions summing to the file.
            let total: f64 = layout.file(i).cached_bytes();
            assert!((total - 100e6).abs() < 1.0);
        }
    }

    #[test]
    fn read_plan_fetches_all_partitions() {
        let f = files();
        let s = SpCache::with_alpha(1e-7);
        let mut r = rng(3);
        let layout = s.build_layout(&f, 30, &mut r);
        let plan = s.read_plan(0, &f, &layout, &mut r);
        plan.validate();
        assert_eq!(plan.fetches.len(), plan.wait_for);
        assert_eq!(plan.post_cost, 0.0);
        assert_eq!(plan.fetches.len(), layout.file(0).chunks.len());
    }

    #[test]
    fn write_plan_is_single_whole_file() {
        let f = files();
        let s = SpCache::with_alpha(1e-7);
        let mut r = rng(4);
        let plan = s.write_plan(0, &f, 30, &mut r);
        assert_eq!(plan.writes.len(), 1);
        assert_eq!(plan.total_bytes(), 100e6);
        assert_eq!(plan.pre_cost, 0.0);
    }

    #[test]
    fn split_write_variant_splits_hot_files() {
        let f = files();
        let s = SpCacheSplitWrite::new(1e-7);
        let mut r = rng(5);
        let hot = s.write_plan(0, &f, 30, &mut r);
        let cold = s.write_plan(99, &f, 30, &mut r);
        assert!(hot.writes.len() > 1, "hot file should split on write");
        assert_eq!(cold.writes.len(), 1, "cold file stays whole");
        // Redundancy-free writes: total bytes = file size either way.
        assert!((hot.total_bytes() - 100e6).abs() < 1.0);
    }

    #[test]
    fn tuned_constructor_produces_usable_scheme() {
        let f = files();
        let (scheme, tuned) = SpCache::tuned(&f, 30, 125e6, 8.0, &TunerConfig::default());
        assert!(scheme.alpha() > 0.0);
        assert!(tuned.bound.is_finite());
        let mut r = rng(6);
        let layout = scheme.build_layout(&f, 30, &mut r);
        assert_eq!(layout.len(), 100);
    }

    #[test]
    fn alpha_zero_caches_whole_files() {
        let f = files();
        let s = SpCache::with_alpha(0.0);
        let mut r = rng(7);
        let layout = s.build_layout(&f, 30, &mut r);
        for i in 0..f.len() {
            assert_eq!(layout.file(i).chunks.len(), 1);
        }
    }
}

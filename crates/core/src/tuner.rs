//! Algorithm 1 — configuration of the scale factor α.
//!
//! The latency bound (Eq. 9) dips steeply as α grows, reaches an "elbow"
//! where the cluster is balanced, then flattens (and in reality rises from
//! networking overhead and stragglers, which the model deliberately
//! excludes). Algorithm 1 settles on the elbow:
//!
//! 1. start with α¹ such that the hottest file is split into `N/3`
//!    partitions,
//! 2. each iteration inflate α by 1.5× and recompute the bound under a
//!    fresh random placement,
//! 3. stop when the bound improves by less than 1%.

use spcache_workload::StragglerModel;

use crate::file::FileSet;
use crate::forkjoin::{system_latency_bound, BoundConfig};
use crate::goodput::Goodput;
use crate::placement::random_partition_map;

/// Tuning knobs of Algorithm 1 (paper defaults).
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Multiplicative step for α (paper: 1.5).
    pub growth: f64,
    /// Relative-improvement stopping threshold (paper: 0.01).
    pub tolerance: f64,
    /// Initial partitions for the hottest file, as a fraction of the
    /// cluster (paper: 1/3 → `N/3` partitions).
    pub initial_fraction: f64,
    /// Safety cap on iterations.
    pub max_iters: usize,
    /// RNG seed for the random placements drawn during the search.
    pub seed: u64,
    /// Client-NIC goodput decay used in the bound's per-file floor; the
    /// floor is what gives the bound its elbow (see
    /// [`crate::goodput::Goodput`]). Defaults to the Fig. 6 1 Gbps curve.
    pub goodput: Goodput,
    /// Straggler model the deployment runs under; folds the analytic
    /// `E[max of k]` exposure into the bound so the search stops before
    /// over-splitting into straggler territory. Defaults to none.
    pub stragglers: StragglerModel,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            growth: 1.5,
            tolerance: 0.01,
            initial_fraction: 1.0 / 3.0,
            max_iters: 64,
            seed: 0x5bca11e,
            goodput: Goodput::gbps1(),
            stragglers: StragglerModel::none(),
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct Tuned {
    /// The chosen scale factor α.
    pub alpha: f64,
    /// The latency bound at `alpha` (seconds).
    pub bound: f64,
    /// Iterations executed (bound evaluations).
    pub iterations: usize,
    /// `(α, bound)` per iteration — the Fig. 8 curve.
    pub history: Vec<(f64, f64)>,
}

/// Runs Algorithm 1 with an explicit aggregate request rate.
///
/// `lambda_total` is the cluster-wide arrival rate Λ (req/s) used to
/// derive per-file rates `λ_i = P_i Λ`; `bandwidth` is the per-server
/// network bandwidth in bytes/s (uniform — the paper's EC2 clusters are
/// homogeneous; per-server bandwidths are supported by
/// [`tune_scale_factor_hetero`]).
///
/// # Examples
///
/// ```
/// use spcache_core::tuner::{tune_scale_factor_with_rate, TunerConfig};
/// use spcache_core::FileSet;
/// use spcache_workload::zipf::zipf_popularities;
///
/// // 300 files of 100 MB with Zipf(1.05) popularity on 30 × 1 Gbps servers.
/// let files = FileSet::uniform_size(100e6, &zipf_popularities(300, 1.05));
/// let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &TunerConfig::default());
/// assert!(tuned.bound.is_finite());
/// // The hottest file is split; selectivity orders counts by load.
/// let ks = files.partition_counts(tuned.alpha);
/// assert!(ks[0] > 1 && ks[0] >= *ks.last().unwrap());
/// ```
pub fn tune_scale_factor_with_rate(
    files: &FileSet,
    n_servers: usize,
    bandwidth: f64,
    lambda_total: f64,
    cfg: &TunerConfig,
) -> Tuned {
    let bandwidths = vec![bandwidth; n_servers];
    tune_scale_factor_hetero(files, &bandwidths, lambda_total, cfg)
}

/// Convenience wrapper choosing a mildly loaded default rate: the rate at
/// which the busiest *balanced* cluster would sit at ρ ≈ 0.5, which keeps
/// the model in its informative regime. Prefer
/// [`tune_scale_factor_with_rate`] when the real rate is known.
pub fn tune_scale_factor(
    files: &FileSet,
    n_servers: usize,
    bandwidth: f64,
    cfg: &TunerConfig,
) -> Tuned {
    // Aggregate service capacity if load were perfectly spread:
    // Λ * E[S] / N = rho → Λ = rho * N * B / mean_file_bytes_per_request.
    let mean_bytes: f64 = files
        .iter()
        .map(|(_, f)| f.popularity * f.size_bytes)
        .sum();
    let lambda = 0.5 * n_servers as f64 * bandwidth / mean_bytes.max(1.0);
    tune_scale_factor_hetero(files, &vec![bandwidth; n_servers], lambda, cfg)
}

/// Algorithm 1 with per-server bandwidths.
///
/// # Panics
///
/// Panics if `bandwidths` is empty or `lambda_total < 0`.
pub fn tune_scale_factor_hetero(
    files: &FileSet,
    bandwidths: &[f64],
    lambda_total: f64,
    cfg: &TunerConfig,
) -> Tuned {
    assert!(!bandwidths.is_empty(), "need at least one server");
    assert!(lambda_total >= 0.0);
    let n_servers = bandwidths.len();
    let rates = files.request_rates(lambda_total);

    // Line 2: α¹ = (N · initial_fraction) / max_i L_i.
    let max_load = files.max_load();
    let mut alpha = (n_servers as f64 * cfg.initial_fraction / max_load).max(f64::MIN_POSITIVE);

    let mut history = Vec::new();
    let mut prev_bound = f64::INFINITY;
    let mut best = (alpha, f64::INFINITY);
    let mut small_steps = 0usize;

    // Clients in the paper's clusters have the same NIC as the servers;
    // use the mean server bandwidth for the client-side floor.
    let client_bw = bandwidths.iter().sum::<f64>() / bandwidths.len() as f64;
    let bound_cfg = BoundConfig {
        goodput: cfg.goodput,
        stragglers: cfg.stragglers.clone(),
        ..BoundConfig::with_client_bandwidth(client_bw)
    };

    for iter in 0..cfg.max_iters {
        // Line 3/5: random placement under the current α, then the bound.
        // The placement RNG is re-seeded every iteration so successive
        // bound evaluations differ only through k_i, not through placement
        // luck — otherwise placement noise can fake a "< 1% improvement"
        // and stop the search early.
        let mut rng = spcache_sim::Xoshiro256StarStar::seed(cfg.seed);
        let map = random_partition_map(files, alpha, n_servers, &mut rng);
        let bound = system_latency_bound(files, &rates, &map, bandwidths, &bound_cfg);
        history.push((alpha, bound));
        if bound < best.1 {
            best = (alpha, bound);
        }

        // Line 8: stop when the improvement falls below tolerance. An
        // infinite previous bound (overload before balancing) never stops
        // the search. Robustness tweak over the paper's literal rule: the
        // descent can briefly plateau right after leaving the unstable
        // region (e.g. a shoulder between "hot file tamed" and "mid files
        // tamed"), so require *two consecutive* sub-tolerance steps before
        // settling on the elbow.
        if prev_bound.is_finite() && bound.is_finite() {
            let improvement = (prev_bound - bound).abs();
            if improvement <= cfg.tolerance * prev_bound {
                small_steps += 1;
                if small_steps >= 2 {
                    return Tuned {
                        alpha: best.0,
                        bound: best.1,
                        iterations: iter + 1,
                        history,
                    };
                }
            } else {
                small_steps = 0;
            }
        }
        prev_bound = bound;
        alpha *= cfg.growth;
    }

    Tuned {
        alpha: best.0,
        bound: best.1,
        iterations: cfg.max_iters,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcache_workload::zipf::zipf_popularities;

    fn ec2_files(n: usize) -> FileSet {
        FileSet::uniform_size(100e6, &zipf_popularities(n, 1.05))
    }

    #[test]
    fn tuner_terminates_and_finds_finite_bound() {
        let files = ec2_files(300);
        let cfg = TunerConfig::default();
        let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &cfg);
        assert!(tuned.bound.is_finite(), "bound {:?}", tuned.bound);
        assert!(tuned.alpha > 0.0);
        assert!(tuned.iterations <= cfg.max_iters);
        assert_eq!(tuned.history.len(), tuned.iterations);
    }

    #[test]
    fn initial_alpha_splits_hottest_into_n_over_3() {
        let files = ec2_files(100);
        let cfg = TunerConfig {
            max_iters: 1,
            ..TunerConfig::default()
        };
        let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 6.0, &cfg);
        let (alpha0, _) = tuned.history[0];
        let k_hottest = (alpha0 * files.max_load()).ceil() as usize;
        assert_eq!(k_hottest, 10); // N/3 = 30/3
    }

    #[test]
    fn bound_history_dips_then_flattens() {
        // The elbow shape of Fig. 8: early iterations improve a lot, final
        // iteration improves < 1%.
        let files = ec2_files(300);
        let cfg = TunerConfig::default();
        let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &cfg);
        let finite: Vec<f64> = tuned
            .history
            .iter()
            .map(|&(_, b)| b)
            .filter(|b| b.is_finite())
            .collect();
        assert!(finite.len() >= 2, "need at least two finite evaluations");
        let first = finite[0];
        let last = *finite.last().unwrap();
        assert!(last <= first, "bound should not worsen: {first} → {last}");
    }

    #[test]
    fn tuned_alpha_partitions_only_hot_files() {
        // Fig. 11: only the hot head of the popularity distribution gets
        // split; the cold tail stays whole.
        let files = ec2_files(100);
        let cfg = TunerConfig::default();
        let tuned = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &cfg);
        let ks = files.partition_counts(tuned.alpha);
        assert!(ks[0] > 1, "hottest file must be split, got {}", ks[0]);
        assert_eq!(*ks.last().unwrap(), 1, "coldest file must stay whole");
        let split_fraction = ks.iter().filter(|&&k| k > 1).count() as f64 / ks.len() as f64;
        assert!(
            (0.05..=0.7).contains(&split_fraction),
            "split fraction {split_fraction} implausible"
        );
    }

    #[test]
    fn higher_load_drives_higher_alpha() {
        let files = ec2_files(200);
        let cfg = TunerConfig::default();
        let low = tune_scale_factor_with_rate(&files, 30, 125e6, 4.0, &cfg);
        let high = tune_scale_factor_with_rate(&files, 30, 125e6, 16.0, &cfg);
        assert!(
            high.alpha >= low.alpha,
            "alpha should grow with load: {} vs {}",
            low.alpha,
            high.alpha
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let files = ec2_files(150);
        let cfg = TunerConfig::default();
        let a = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &cfg);
        let b = tune_scale_factor_with_rate(&files, 30, 125e6, 8.0, &cfg);
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.bound, b.bound);
    }

    #[test]
    fn default_rate_wrapper_is_sane() {
        let files = ec2_files(100);
        let tuned = tune_scale_factor(&files, 30, 125e6, &TunerConfig::default());
        assert!(tuned.bound.is_finite());
    }
}

//! Online partition-granularity adjustment (the paper's §8 extension).
//!
//! Periodic repartition (Algorithm 2) reassembles a whole file to re-split
//! it. For *short-term* popularity bursts §8 sketches something cheaper:
//! since partitions are contiguous byte ranges, a file can move from `k`
//! to `k'` partitions by **splitting and combining the existing
//! partitions in place**, transferring only the bytes that actually
//! change servers — no reassembly point, no full-file transfer
//! ("this can be done in a distributed manner and incurs only a small
//! amount of data transfer", §8).
//!
//! This module plans such adjustments: each new partition (a byte range
//! under the new granularity) is assigned to the server holding the
//! *largest overlap* with it, subject to the distinct-servers invariant;
//! the bytes it lacks are pulled as sub-ranges from their current
//! holders. The plan reports exactly how many bytes cross the network,
//! which collapses to 0 when `k' = k` and stays far below the full
//! reassembly cost otherwise (tested below; the `spcache-store` crate
//! executes these plans against real bytes).

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` in file coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteRange {
    /// First byte.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

impl ByteRange {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Intersection with another range (possibly empty).
    pub fn intersect(&self, other: &ByteRange) -> ByteRange {
        ByteRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end).max(self.start.max(other.start)),
        }
    }
}

/// The byte range of partition `j` out of `k` for a file of `size` bytes,
/// matching `spcache_ec::split_into_shards`'s layout (equal `ceil(size/k)`
/// slots, the last one short).
pub fn partition_range(size: u64, k: usize, j: usize) -> ByteRange {
    assert!(k > 0 && j < k);
    let slot = size.div_ceil(k as u64).max(1);
    let start = (j as u64 * slot).min(size);
    let end = ((j as u64 + 1) * slot).min(size);
    ByteRange { start, end }
}

/// One sub-range pull feeding a new partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PullOp {
    /// Server currently holding the bytes.
    pub from_server: usize,
    /// Old partition index holding the bytes.
    pub from_part: u32,
    /// Offset of the wanted bytes *within that old partition*.
    pub offset_in_part: u64,
    /// Number of bytes wanted.
    pub len: u64,
}

/// One new partition to materialize.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NewPartition {
    /// Index under the new granularity.
    pub index: u32,
    /// File byte range it covers.
    pub range: ByteRange,
    /// Server that will hold it.
    pub server: usize,
    /// Sub-range pulls, in file order; pulls from `server` itself are
    /// local (no network).
    pub pulls: Vec<PullOp>,
}

impl NewPartition {
    /// Bytes this partition must pull over the network (excludes local
    /// pulls).
    pub fn network_bytes(&self) -> u64 {
        self.pulls
            .iter()
            .filter(|p| p.from_server != self.server)
            .map(|p| p.len)
            .sum()
    }
}

/// A complete online adjustment plan for one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlinePlan {
    /// File size in bytes.
    pub size: u64,
    /// Old partition count.
    pub old_k: usize,
    /// New partitions in index order.
    pub parts: Vec<NewPartition>,
}

impl OnlinePlan {
    /// New partition count.
    pub fn new_k(&self) -> usize {
        self.parts.len()
    }

    /// Total bytes crossing the network.
    pub fn network_bytes(&self) -> u64 {
        self.parts.iter().map(NewPartition::network_bytes).sum()
    }

    /// What Algorithm 2's reassembly path would move for the same
    /// adjustment: pull `(k−1)/k` of the file to an executor, push
    /// `(k'−1)/k'` back out (best case — executor holds one old and keeps
    /// one new partition).
    pub fn reassembly_bytes(&self) -> u64 {
        let k = self.old_k as u64;
        let k2 = self.parts.len() as u64;
        self.size * (k - 1) / k + self.size * (k2 - 1) / k2
    }

    /// The servers of the new layout, in partition order.
    pub fn new_servers(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.server).collect()
    }
}

/// Plans an online adjustment of one file from its current placement
/// (`old_servers[j]` holds partition `j`) to `new_k` partitions.
///
/// Assignment: greedy by overlap — each new partition goes to the server
/// whose old partition overlaps it the most, unless that server is
/// already taken, in which case the least-loaded unused server (per
/// `server_loads`) hosts it. Every byte a new partition lacks is pulled
/// as a sub-range from its current holder.
///
/// # Panics
///
/// Panics if `new_k` is 0, exceeds `server_loads.len()`, or
/// `old_servers` is empty / contains duplicates.
pub fn plan_adjust(
    size: u64,
    old_servers: &[usize],
    new_k: usize,
    server_loads: &[f64],
) -> OnlinePlan {
    let old_k = old_servers.len();
    assert!(old_k > 0, "file must have partitions");
    assert!(new_k > 0, "target partition count must be positive");
    assert!(
        new_k <= server_loads.len(),
        "cannot place {new_k} distinct partitions on {} servers",
        server_loads.len()
    );
    {
        let mut sorted = old_servers.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), old_k, "old placement has duplicate servers");
    }

    let mut used = vec![false; server_loads.len()];
    let mut parts = Vec::with_capacity(new_k);
    for i in 0..new_k {
        let range = partition_range(size, new_k, i);
        // Which old partition overlaps this new range the most, and is its
        // server still free?
        let mut best: Option<(u64, usize)> = None; // (overlap, old index)
        for (j, &srv) in old_servers.iter().enumerate() {
            if used[srv] {
                continue;
            }
            let overlap = range.intersect(&partition_range(size, old_k, j)).len();
            if best.is_none_or(|(b, _)| overlap > b) && overlap > 0 {
                best = Some((overlap, j));
            }
        }
        let server = match best {
            Some((_, j)) => old_servers[j],
            None => {
                // No overlapping holder free: least-loaded unused server,
                // preferring servers that hold no old partition at all —
                // taking a holder here would rob a later new partition of
                // its local bytes.
                let is_holder = |s: usize| old_servers.contains(&s);
                let pick = |only_non_holders: bool| {
                    (0..server_loads.len())
                        .filter(|&s| !used[s] && (!only_non_holders || !is_holder(s)))
                        .min_by(|&a, &b| {
                            server_loads[a]
                                .partial_cmp(&server_loads[b])
                                .expect("no NaN loads")
                                .then(a.cmp(&b))
                        })
                };
                pick(true)
                    .or_else(|| pick(false))
                    .expect("new_k <= server count guarantees a free server")
            }
        };
        used[server] = true;

        // Pull list: every old partition overlapping the new range
        // contributes its slice, in file order.
        let mut pulls = Vec::new();
        for (j, &srv) in old_servers.iter().enumerate() {
            let old_range = partition_range(size, old_k, j);
            let inter = range.intersect(&old_range);
            if !inter.is_empty() {
                pulls.push(PullOp {
                    from_server: srv,
                    from_part: j as u32,
                    offset_in_part: inter.start - old_range.start,
                    len: inter.len(),
                });
            }
        }
        parts.push(NewPartition {
            index: i as u32,
            range,
            server,
            pulls,
        });
    }

    OnlinePlan {
        size,
        old_k,
        parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_file() {
        for &(size, k) in &[(100u64, 3usize), (99, 10), (1, 1), (7, 7), (1000, 4)] {
            let mut cursor = 0;
            for j in 0..k {
                let r = partition_range(size, k, j);
                assert_eq!(r.start, cursor.min(size), "size {size} k {k} j {j}");
                cursor = r.end;
            }
            assert_eq!(cursor, size);
        }
    }

    #[test]
    fn intersect_basics() {
        let a = ByteRange { start: 0, end: 10 };
        let b = ByteRange { start: 5, end: 15 };
        assert_eq!(a.intersect(&b), ByteRange { start: 5, end: 10 });
        let c = ByteRange { start: 20, end: 30 };
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn identity_adjustment_moves_nothing() {
        let plan = plan_adjust(1000, &[2, 5, 7], 3, &[0.0; 10]);
        assert_eq!(plan.network_bytes(), 0, "k'=k must be free");
        assert_eq!(plan.new_servers(), vec![2, 5, 7]);
    }

    #[test]
    fn doubling_moves_half_the_file() {
        // k=2 → k=4: each holder keeps the first half of its partition and
        // ships the second half elsewhere: exactly size/2 over the network.
        let plan = plan_adjust(1000, &[0, 1], 4, &[0.0; 8]);
        assert_eq!(plan.new_k(), 4);
        assert_eq!(plan.network_bytes(), 500);
        // Far below the reassembly cost.
        assert!(plan.network_bytes() < plan.reassembly_bytes());
        // Distinct servers.
        let mut s = plan.new_servers();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn halving_moves_half_the_file() {
        // k=4 → k=2: new partition 0 = old parts 0+1; holder of old 0
        // keeps its half and pulls old 1. Network = size/2.
        let plan = plan_adjust(1000, &[3, 4, 5, 6], 2, &[0.0; 8]);
        assert_eq!(plan.network_bytes(), 500);
        assert_eq!(plan.new_servers(), vec![3, 5]);
    }

    #[test]
    fn pulls_cover_each_new_range_exactly() {
        for &(size, old_k, new_k) in &[
            (997u64, 3usize, 7usize),
            (1000, 7, 3),
            (12, 4, 5),
            (100, 1, 10),
            (100, 10, 1),
        ] {
            let old: Vec<usize> = (0..old_k).collect();
            let plan = plan_adjust(size, &old, new_k, &[0.0; 16]);
            for p in &plan.parts {
                let total: u64 = p.pulls.iter().map(|x| x.len).sum();
                assert_eq!(total, p.range.len(), "size {size} {old_k}→{new_k}");
                // Pulls are contiguous and in order.
                let mut cursor = p.range.start;
                for pull in &p.pulls {
                    let src = partition_range(size, old_k, pull.from_part as usize);
                    assert_eq!(src.start + pull.offset_in_part, cursor);
                    cursor += pull.len;
                }
                assert_eq!(cursor, p.range.end);
            }
        }
    }

    #[test]
    fn online_beats_reassembly_for_moderate_changes() {
        for &(old_k, new_k) in &[(4usize, 6usize), (6, 4), (10, 15), (8, 8), (2, 3)] {
            let old: Vec<usize> = (0..old_k).collect();
            let plan = plan_adjust(1_000_000, &old, new_k, &[0.0; 20]);
            assert!(
                plan.network_bytes() <= plan.reassembly_bytes(),
                "{old_k}→{new_k}: online {} vs reassembly {}",
                plan.network_bytes(),
                plan.reassembly_bytes()
            );
        }
    }

    #[test]
    fn overflow_servers_prefer_least_loaded() {
        // Splitting 1 → 3 needs two fresh servers; they must be the least
        // loaded unused ones.
        let mut loads = vec![9.0; 6];
        loads[2] = 1.0;
        loads[4] = 0.5;
        let plan = plan_adjust(999, &[0], 3, &loads);
        let servers = plan.new_servers();
        assert_eq!(servers[0], 0, "holder keeps the head");
        assert!(servers.contains(&4) && servers.contains(&2));
    }

    #[test]
    fn tiny_files_still_plan() {
        let plan = plan_adjust(1, &[0], 3, &[0.0; 4]);
        assert_eq!(plan.new_k(), 3);
        // Only partition 0 has bytes.
        assert_eq!(plan.parts[0].range.len(), 1);
        assert_eq!(plan.parts[1].range.len(), 0);
    }

    #[test]
    #[should_panic(expected = "distinct partitions")]
    fn too_few_servers_rejected() {
        let _ = plan_adjust(100, &[0], 5, &[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate servers")]
    fn duplicate_old_servers_rejected() {
        let _ = plan_adjust(100, &[1, 1], 2, &[0.0; 3]);
    }
}

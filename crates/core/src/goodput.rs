//! Network goodput decay with connection count.
//!
//! §4.2 measures how a reader's *goodput* decays as one logical read fans
//! out over more TCP connections (protocol overhead + incast): on a 1 Gbps
//! link goodput drops ~20% with 20 partitions and ~40% with 100; on
//! 500 Mbps it falls to ~0.6 at 100 (Fig. 6). A logarithmic decay
//! `g(c) = max(1 − a·ln c, floor)` fits both curves.
//!
//! This is a **client-side** effect: all partitions of one read funnel
//! through the reading client's NIC, so a read of `S` bytes over `c`
//! connections can never complete faster than `S / (B_client · g(c))`.
//! That floor is what makes over-splitting expensive and gives the
//! latency-vs-α curve its elbow (Figs. 5 and 8). The paper's queueing
//! model omits it ("we assume a non-blocking network"); we fold it into
//! the bound as a `max` with the fork-join term — a deviation documented
//! in DESIGN.md — because without it Algorithm 1 has no reason to ever
//! stop splitting.

use serde::{Deserialize, Serialize};

/// Logarithmic goodput decay in the number of concurrent connections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Goodput {
    /// Decay coefficient `a`.
    pub decay: f64,
    /// Lower bound on the goodput factor.
    pub floor: f64,
}

impl Goodput {
    /// Calibrated to the paper's 1 Gbps curve (Fig. 6): `g(20) ≈ 0.8`,
    /// `g(100) ≈ 0.66`.
    pub fn gbps1() -> Self {
        Goodput {
            decay: 0.067,
            floor: 0.3,
        }
    }

    /// Calibrated to the paper's 500 Mbps curve: steeper decay, reaching
    /// ~0.6 at 100 connections.
    pub fn mbps500() -> Self {
        Goodput {
            decay: 0.088,
            floor: 0.3,
        }
    }

    /// No connection overhead at all (ablation / the paper's idealized
    /// queueing model).
    pub fn ideal() -> Self {
        Goodput {
            decay: 0.0,
            floor: 1.0,
        }
    }

    /// The goodput factor for `connections` concurrent fetches
    /// (1.0 at a single connection).
    #[inline]
    pub fn factor(&self, connections: usize) -> f64 {
        debug_assert!(connections >= 1);
        (1.0 - self.decay * (connections as f64).ln()).max(self.floor)
    }
}

impl Default for Goodput {
    fn default() -> Self {
        Goodput::gbps1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_connection_is_ideal() {
        assert_eq!(Goodput::gbps1().factor(1), 1.0);
        assert_eq!(Goodput::mbps500().factor(1), 1.0);
    }

    #[test]
    fn matches_fig6_calibration_points() {
        let g = Goodput::gbps1();
        let g20 = g.factor(20);
        let g100 = g.factor(100);
        assert!((0.75..=0.85).contains(&g20), "g(20) = {g20}");
        assert!((0.58..=0.72).contains(&g100), "g(100) = {g100}");

        let m = Goodput::mbps500();
        let m100 = m.factor(100);
        assert!((0.55..=0.65).contains(&m100), "500Mbps g(100) = {m100}");
    }

    #[test]
    fn monotone_decreasing() {
        let g = Goodput::gbps1();
        let mut prev = f64::INFINITY;
        for c in 1..200 {
            let f = g.factor(c);
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    fn floor_is_respected() {
        let g = Goodput {
            decay: 0.5,
            floor: 0.3,
        };
        assert_eq!(g.factor(10_000), 0.3);
    }

    #[test]
    fn ideal_never_decays() {
        assert_eq!(Goodput::ideal().factor(1000), 1.0);
    }
}

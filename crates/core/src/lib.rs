#![warn(missing_docs)]

//! SP-Cache core: selective partition, fork-join latency analysis and the
//! configuration/repartition algorithms.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`file`] — the file/load model: `L_i = S_i · P_i` (size × popularity).
//! * [`partition`] — selective partition (Eq. 1): `k_i = ceil(α · L_i)`,
//!   so per-partition load is uniform `≈ 1/α` and random placement
//!   balances servers.
//! * [`placement`] — partition placement: random-distinct (the default,
//!   §5.1), greedy least-loaded (Algorithm 2's repartition placement),
//!   round-robin and consistent hashing (the §9 strawmen).
//! * [`mg1`] — M/G/1 queue moments per cache server (Eqs. 10–13 via the
//!   Pollaczek–Khinchin transform).
//! * [`forkjoin`] — the fork-join mean-latency upper bound (Eq. 9), a 1-D
//!   convex minimization solved by golden-section search, and the
//!   popularity-weighted system bound (Eq. 8).
//! * [`tuner`] — **Algorithm 1**: exponential search for the optimal scale
//!   factor α (start at `N/3` partitions for the hottest file, inflate
//!   1.5× until the bound improves < 1%).
//! * [`repartition`] — **Algorithm 2**: the parallel repartition planner
//!   (keep unchanged files, greedy placement on least-loaded servers,
//!   executor selection on servers already holding a partition).
//! * [`variance`] — **Theorem 1**: the load-variance comparison against
//!   EC-Cache, both analytic and Monte-Carlo.
//! * [`scheme`] — the [`scheme::CachingScheme`] abstraction that SP-Cache
//!   and every baseline implement, so the simulator and the real store can
//!   drive any of them interchangeably.
//! * [`lru`] — the byte-budgeted LRU shared by the simulator's
//!   per-server caches and the real store's memory-budgeted workers.

pub mod file;
pub mod forkjoin;
pub mod goodput;
pub mod lru;
pub mod mg1;
pub mod online;
pub mod partition;
pub mod placement;
pub mod repartition;
pub mod scheme;
pub mod spcache;
pub mod tuner;
pub mod variance;

pub use file::{FileId, FileMeta, FileSet};
pub use goodput::Goodput;
pub use lru::LruCache;
pub use partition::partition_count;
pub use scheme::{CachingScheme, FileLayout, Layout, ReadPlan, WritePlan};
pub use spcache::SpCache;

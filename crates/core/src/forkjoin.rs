//! The fork-join mean-latency upper bound (paper Eq. 9, after Xiang et al.
//! [45], Lemma 2).
//!
//! A read of file `i` forks into `k_i` partition reads and joins on the
//! slowest, so `T̄_i = E[max_s Q_{i,s}]` — intractable exactly, but upper
//! bounded by
//!
//! ```text
//! T̂_i = min_z  z + Σ_s ½(E[Q_{i,s}] − z) + ½ √((E[Q_{i,s}] − z)² + Var[Q_{i,s}])
//! ```
//!
//! which is a 1-D *convex* minimization in the auxiliary variable `z`
//! (each summand is a convex "softplus-like" function of `z`). The paper
//! solves it with CVXPY; a derivative-free golden-section search over an
//! adaptively expanded bracket reaches the same minimum to tolerance in
//! microseconds, which is what makes tuning over 10k files cheap
//! (Fig. 10).

use spcache_workload::StragglerModel;

use crate::file::FileSet;
use crate::goodput::Goodput;
use crate::mg1::ClusterModel;
use crate::partition::PartitionMap;

/// Golden-section search settings for the inner minimization.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Absolute tolerance on `z` (seconds).
    pub tol: f64,
    /// Hard cap on iterations (the bracket shrinks by ~0.618 per step).
    pub max_iters: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            tol: 1e-9,
            max_iters: 200,
        }
    }
}

/// Parameters of the system-level bound.
#[derive(Debug)]
pub struct BoundConfig {
    /// Inner convex-solver settings.
    pub solver: SolverConfig,
    /// Client-NIC goodput decay: reading `k` partitions in parallel
    /// funnels through one client link at `client_bandwidth · g(k)`,
    /// flooring each file's latency at `S_i / (B · g(k_i))`. Set to
    /// [`Goodput::ideal`] with `client_bandwidth = ∞` to recover the
    /// paper's pure fork-join model.
    pub goodput: Goodput,
    /// Client NIC bandwidth (bytes/s). `f64::INFINITY` disables the floor.
    pub client_bandwidth: f64,
    /// Straggler exposure: a fork-join read of `k` partitions is delayed
    /// by the *maximum* straggler factor among them, so each file's floor
    /// is inflated by `E[max of k draws]` (§5's "small enough to restrain
    /// the impact of stragglers"). Defaults to no stragglers — the paper's
    /// pure model.
    pub stragglers: StragglerModel,
}

impl BoundConfig {
    /// The paper's pure queueing model: no client floor at all.
    pub fn pure_forkjoin() -> Self {
        BoundConfig {
            solver: SolverConfig::default(),
            goodput: Goodput::ideal(),
            client_bandwidth: f64::INFINITY,
            stragglers: StragglerModel::none(),
        }
    }

    /// The default: fork-join bound plus a client-NIC floor at the given
    /// bandwidth with Fig. 6's 1 Gbps goodput decay.
    pub fn with_client_bandwidth(bandwidth: f64) -> Self {
        BoundConfig {
            solver: SolverConfig::default(),
            goodput: Goodput::gbps1(),
            client_bandwidth: bandwidth,
            stragglers: StragglerModel::none(),
        }
    }
}

impl Clone for BoundConfig {
    fn clone(&self) -> Self {
        BoundConfig {
            solver: self.solver,
            goodput: self.goodput,
            client_bandwidth: self.client_bandwidth,
            stragglers: self.stragglers.clone(),
        }
    }
}

/// Eq. 9's objective at a given `z` for one file's sojourn moments.
#[inline]
fn objective(z: f64, moments: &[(f64, f64)]) -> f64 {
    let mut acc = z;
    for &(mean, var) in moments {
        let d = mean - z;
        acc += 0.5 * (d + (d * d + var).sqrt());
    }
    acc
}

/// Upper-bounds the mean read latency of one file given the
/// `(E[Q_{i,s}], Var[Q_{i,s}])` pairs of its partition servers.
///
/// Returns `f64::INFINITY` if any queue is unstable.
///
/// # Panics
///
/// Panics if `moments` is empty.
pub fn file_latency_bound(moments: &[(f64, f64)], cfg: &SolverConfig) -> f64 {
    assert!(!moments.is_empty(), "file must have at least one partition");
    if moments
        .iter()
        .any(|&(m, v)| !m.is_finite() || !v.is_finite())
    {
        return f64::INFINITY;
    }
    // Single partition: no fork-join max — the bound tightens to E[Q]
    // (the minimization's infimum as z → −∞).
    if moments.len() == 1 {
        return moments[0].0;
    }

    // Bracket the minimizer. The optimum satisfies
    // Σ (E_s − z)/√((E_s−z)² + V_s) = 2 − k, which for k ≥ 2 lies below
    // max(E); expand left until the derivative is negative.
    let max_mean = moments.iter().map(|&(m, _)| m).fold(f64::MIN, f64::max);
    let max_sd = moments
        .iter()
        .map(|&(_, v)| v.sqrt())
        .fold(0.0f64, f64::max);
    let hi = max_mean + max_sd + 1e-12;
    let mut lo = max_mean - (max_sd + 1.0);
    // Expand the left edge until f(lo) is decreasing toward the minimum
    // (guaranteed to terminate: derivative → 1 − (k−1) < 0 as z → −∞ for
    // k ≥ 2 only up to the point where the sqrt terms saturate).
    let mut guard = 0;
    while objective(lo, moments) < objective(lo + 1e-6, moments) && guard < 128 {
        let width = hi - lo;
        lo -= width;
        guard += 1;
    }

    // Golden-section search.
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = objective(c, moments);
    let mut fd = objective(d, moments);
    for _ in 0..cfg.max_iters {
        if (b - a).abs() < cfg.tol {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = objective(c, moments);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = objective(d, moments);
        }
    }
    let z = 0.5 * (a + b);
    objective(z, moments)
}

/// The popularity-weighted system bound `T̂ = Σ_i P_i · T̂_i` (Eq. 8 with
/// each `T̄_i` replaced by its bound), with each file's bound additionally
/// floored by the client-NIC transfer time `S_i / (B_client · g(k_i))`
/// (see [`BoundConfig`]).
///
/// Returns `f64::INFINITY` if any server queue is unstable.
pub fn system_latency_bound(
    files: &FileSet,
    rates: &[f64],
    map: &PartitionMap,
    bandwidths: &[f64],
    cfg: &BoundConfig,
) -> f64 {
    let model = ClusterModel::build(files, rates, map, bandwidths);
    if !model.all_stable() {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for (i, meta) in files.iter() {
        let moments = model.sojourn_moments(files, map, i);
        let mut t_i = file_latency_bound(&moments, &cfg.solver);
        if !t_i.is_finite() {
            return f64::INFINITY;
        }
        if cfg.client_bandwidth.is_finite() {
            let k = map.k_of(i);
            let floor = meta.size_bytes / (cfg.client_bandwidth * cfg.goodput.factor(k))
                * cfg.stragglers.expected_max_factor(k);
            t_i = t_i.max(floor);
        }
        total += meta.popularity * t_i;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileSet;
    use crate::partition::PartitionMap;

    #[test]
    fn single_partition_bound_is_exact_mean() {
        let cfg = SolverConfig::default();
        assert_eq!(file_latency_bound(&[(0.3, 0.09)], &cfg), 0.3);
    }

    #[test]
    fn bound_dominates_max_of_means() {
        // E[max] >= max(E), and the bound dominates E[max].
        let cfg = SolverConfig::default();
        let moments = vec![(0.2, 0.04), (0.5, 0.25), (0.3, 0.09)];
        let b = file_latency_bound(&moments, &cfg);
        assert!(b >= 0.5, "bound {b} below max mean");
    }

    #[test]
    fn zero_variance_bound_equals_max_mean() {
        // Deterministic sojourns: max is deterministic, bound is tight.
        let cfg = SolverConfig::default();
        let moments = vec![(0.2, 0.0), (0.5, 0.0), (0.3, 0.0)];
        let b = file_latency_bound(&moments, &cfg);
        assert!((b - 0.5).abs() < 1e-6, "bound {b} should equal 0.5");
    }

    #[test]
    fn bound_tight_against_exponential_forkjoin() {
        // k iid exponential(1) sojourns: E[max] = H_k (harmonic number).
        // The Xiang et al. bound is known to be within ~15% for small k.
        let cfg = SolverConfig::default();
        for k in [2usize, 4, 8] {
            let moments = vec![(1.0, 1.0); k];
            let b = file_latency_bound(&moments, &cfg);
            let h_k: f64 = (1..=k).map(|j| 1.0 / j as f64).sum();
            assert!(b >= h_k - 1e-9, "k={k}: bound {b} below E[max] = {h_k}");
            assert!(
                b <= h_k * 1.35,
                "k={k}: bound {b} too loose vs E[max] = {h_k}"
            );
        }
    }

    #[test]
    fn bound_increases_with_variance() {
        let cfg = SolverConfig::default();
        let lo = file_latency_bound(&[(1.0, 0.1), (1.0, 0.1)], &cfg);
        let hi = file_latency_bound(&[(1.0, 1.0), (1.0, 1.0)], &cfg);
        assert!(hi > lo);
    }

    #[test]
    fn infinite_moments_propagate() {
        let cfg = SolverConfig::default();
        let b = file_latency_bound(&[(f64::INFINITY, 1.0), (1.0, 1.0)], &cfg);
        assert!(b.is_infinite());
    }

    #[test]
    fn system_bound_weights_by_popularity() {
        // Two files, both single-partition on separate idle-ish servers:
        // the system bound is the popularity-weighted mean of the E[Q].
        let files = FileSet::from_parts(&[1e8, 1e8], &[0.8, 0.2]);
        let rates = files.request_rates(2.0);
        let map = PartitionMap::new(vec![vec![0], vec![1]], 2);
        let bw = [1e9, 1e9];
        let cfg = BoundConfig::pure_forkjoin();
        let total = system_latency_bound(&files, &rates, &map, &bw, &cfg);
        // Per-file E[Q] from the M/M/1 closed form: t = 0.1s.
        let t = 0.1;
        let e0 = 1.0 / (1.0 / t - rates[0]);
        let e1 = 1.0 / (1.0 / t - rates[1]);
        let expect = 0.8 * e0 + 0.2 * e1;
        assert!(
            (total - expect).abs() < 1e-9,
            "system bound {total} vs {expect}"
        );
    }

    #[test]
    fn system_bound_infinite_when_overloaded() {
        // One server, service 1 s, arrivals 2/s → unstable.
        let files = FileSet::uniform_size(1e9, &[1.0]);
        let map = PartitionMap::new(vec![vec![0]], 1);
        let cfg = BoundConfig::pure_forkjoin();
        let b = system_latency_bound(&files, &[2.0], &map, &[1e9], &cfg);
        assert!(b.is_infinite());
    }

    #[test]
    fn splitting_hot_file_lowers_system_bound() {
        // The core SP-Cache claim in miniature: splitting the hot file
        // across servers reduces the bound.
        let files = FileSet::uniform_size(5e8, &[0.9, 0.1]);
        let rates = files.request_rates(3.0);
        let bw = [1e9; 4];
        let cfg = BoundConfig::pure_forkjoin();
        let unsplit = PartitionMap::new(vec![vec![0], vec![1]], 4);
        let split = PartitionMap::new(vec![vec![0, 1, 2, 3], vec![1]], 4);
        let b_unsplit = system_latency_bound(&files, &rates, &unsplit, &bw, &cfg);
        let b_split = system_latency_bound(&files, &rates, &split, &bw, &cfg);
        assert!(
            b_split < b_unsplit,
            "split {b_split} should beat unsplit {b_unsplit}"
        );
    }
}

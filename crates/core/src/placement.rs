//! Partition placement policies.
//!
//! SP-Cache's key simplification (§5.1/§6.3): because selective partition
//! makes every partition carry the same load, *random* placement on
//! distinct servers already balances the cluster — no placement
//! optimization needed. The repartition path (Algorithm 2) additionally
//! uses a greedy least-loaded placement for the files it moves. Round-robin
//! and consistent hashing are provided as the §9 strawmen.

use rand::Rng;

use spcache_workload::dist::uniform_usize;

use crate::file::FileSet;
use crate::partition::{partition_counts_clamped, PartitionMap};

/// Chooses `k` distinct servers out of `n` uniformly at random (partial
/// Fisher–Yates over an index pool).
///
/// # Panics
///
/// Panics if `k > n` or `k == 0`.
pub fn random_distinct<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Vec<usize> {
    assert!(k > 0, "need at least one server");
    assert!(k <= n, "cannot pick {k} distinct servers out of {n}");
    // For small k relative to n, rejection sampling is cheaper than
    // materializing 0..n; for large k, do a partial shuffle.
    if k * 4 <= n {
        let mut picked = Vec::with_capacity(k);
        while picked.len() < k {
            let s = uniform_usize(rng, n);
            if !picked.contains(&s) {
                picked.push(s);
            }
        }
        picked
    } else {
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + uniform_usize(rng, n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// Chooses the `k` least-loaded servers (Algorithm 2's greedy step),
/// breaking ties by lower index for determinism. `loads[s]` is any
/// additive load measure (partition count or bytes).
///
/// # Panics
///
/// Panics if `k > loads.len()` or `k == 0`.
pub fn least_loaded(k: usize, loads: &[f64]) -> Vec<usize> {
    assert!(k > 0, "need at least one server");
    assert!(k <= loads.len(), "not enough servers");
    let mut idx: Vec<usize> = (0..loads.len()).collect();
    idx.sort_by(|&a, &b| {
        loads[a]
            .partial_cmp(&loads[b])
            .expect("no NaN loads")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Builds a full [`PartitionMap`] with random-distinct placement — the
/// default SP-Cache layout (§5.1).
pub fn random_partition_map<R: Rng + ?Sized>(
    files: &FileSet,
    alpha: f64,
    n_servers: usize,
    rng: &mut R,
) -> PartitionMap {
    let ks = partition_counts_clamped(files, alpha, n_servers);
    let placements = ks
        .iter()
        .map(|&k| random_distinct(k, n_servers, rng))
        .collect();
    PartitionMap::new(placements, n_servers)
}

/// Round-robin placement: file `i`'s partitions land on consecutive
/// servers starting at a rolling cursor. Simple, deterministic — and
/// popularity-agnostic, which is exactly why it load-imbalances (§6.3).
pub fn round_robin_partition_map(files: &FileSet, alpha: f64, n_servers: usize) -> PartitionMap {
    let ks = partition_counts_clamped(files, alpha, n_servers);
    let mut cursor = 0usize;
    let placements = ks
        .iter()
        .map(|&k| {
            let servers: Vec<usize> = (0..k).map(|j| (cursor + j) % n_servers).collect();
            cursor = (cursor + k) % n_servers;
            servers
        })
        .collect();
    PartitionMap::new(placements, n_servers)
}

/// A consistent-hash ring with virtual nodes (the §9 "data placement"
/// strawman). Files map to the first `k` *distinct* servers clockwise from
/// their hash point.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, server)` sorted by position.
    points: Vec<(u64, usize)>,
    n_servers: usize,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual nodes per server.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers == 0` or `vnodes == 0`.
    pub fn new(n_servers: usize, vnodes: usize) -> Self {
        assert!(n_servers > 0 && vnodes > 0);
        let mut points = Vec::with_capacity(n_servers * vnodes);
        for s in 0..n_servers {
            for v in 0..vnodes {
                points.push((Self::hash(((s as u64) << 32) | v as u64), s));
            }
        }
        points.sort_unstable();
        HashRing { points, n_servers }
    }

    /// SplitMix64-style avalanche hash.
    fn hash(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The first `k` distinct servers clockwise from `key`'s hash point.
    ///
    /// # Panics
    ///
    /// Panics if `k > n_servers`.
    pub fn servers_for(&self, key: u64, k: usize) -> Vec<usize> {
        assert!(k <= self.n_servers, "not enough servers on the ring");
        let h = Self::hash(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut picked = Vec::with_capacity(k);
        let mut seen = vec![false; self.n_servers];
        for off in 0..self.points.len() {
            let (_, s) = self.points[(start + off) % self.points.len()];
            if !seen[s] {
                seen[s] = true;
                picked.push(s);
                if picked.len() == k {
                    break;
                }
            }
        }
        picked
    }

    /// Builds a full [`PartitionMap`] for a file set.
    pub fn partition_map(&self, files: &FileSet, alpha: f64) -> PartitionMap {
        let ks = partition_counts_clamped(files, alpha, self.n_servers);
        let placements = ks
            .iter()
            .enumerate()
            .map(|(i, &k)| self.servers_for(i as u64, k))
            .collect();
        PartitionMap::new(placements, self.n_servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;
    use spcache_workload::zipf::zipf_popularities;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn random_distinct_is_distinct() {
        let mut r = rng(1);
        for _ in 0..200 {
            for &(k, n) in &[(1usize, 1usize), (3, 30), (29, 30), (30, 30), (5, 100)] {
                let picked = random_distinct(k, n, &mut r);
                assert_eq!(picked.len(), k);
                let mut sorted = picked.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), k, "duplicates in {picked:?}");
                assert!(picked.iter().all(|&s| s < n));
            }
        }
    }

    #[test]
    fn random_distinct_is_roughly_uniform() {
        let mut r = rng(2);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            for s in random_distinct(3, 10, &mut r) {
                counts[s] += 1;
            }
        }
        // Each server expects 6000 hits.
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (5500..6500).contains(&c),
                "server {s} hit {c} times, expected ~6000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "distinct servers")]
    fn random_distinct_rejects_k_gt_n() {
        let mut r = rng(3);
        let _ = random_distinct(5, 4, &mut r);
    }

    #[test]
    fn least_loaded_picks_minima() {
        let loads = [5.0, 1.0, 3.0, 1.0, 9.0];
        assert_eq!(least_loaded(2, &loads), vec![1, 3]); // ties by index
        assert_eq!(least_loaded(3, &loads), vec![1, 3, 2]);
    }

    #[test]
    fn random_map_balances_partition_counts() {
        // Under Eq. 1 per-partition load is uniform, so random placement
        // should give each server a similar number of partitions.
        let pops = zipf_popularities(300, 1.05);
        let files = FileSet::uniform_size(100e6, &pops);
        let mut r = rng(4);
        let map = random_partition_map(&files, 3e-8, 30, &mut r);
        let pps = map.partitions_per_server();
        let mean = pps.iter().sum::<usize>() as f64 / 30.0;
        let max = *pps.iter().max().unwrap() as f64;
        assert!(
            max < mean * 1.8,
            "max {max} vs mean {mean}: placement too skewed"
        );
    }

    #[test]
    fn round_robin_covers_servers_evenly() {
        let files = FileSet::uniform_size(10.0, &vec![0.01; 100]);
        let map = round_robin_partition_map(&files, 0.0, 10);
        let pps = map.partitions_per_server();
        assert!(pps.iter().all(|&c| c == 10));
    }

    #[test]
    fn hash_ring_deterministic_and_distinct() {
        let ring = HashRing::new(20, 64);
        let a = ring.servers_for(42, 5);
        let b = ring.servers_for(42, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn hash_ring_spreads_keys() {
        let ring = HashRing::new(10, 128);
        let mut counts = [0usize; 10];
        for key in 0..10_000u64 {
            counts[ring.servers_for(key, 1)[0]] += 1;
        }
        // No server should be wildly over-represented (hashing is not
        // perfect — that is the paper's point — but must be sane).
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 2 * min, "ring spread max {max} min {min}");
    }

    #[test]
    fn hash_ring_partition_map_valid() {
        let pops = zipf_popularities(50, 1.1);
        let files = FileSet::uniform_size(40e6, &pops);
        let ring = HashRing::new(30, 32);
        let map = ring.partition_map(&files, 5e-8);
        assert_eq!(map.len(), 50);
    }
}

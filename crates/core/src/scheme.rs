//! The caching-scheme abstraction shared by SP-Cache and every baseline.
//!
//! A scheme answers three questions, and nothing else:
//!
//! 1. **Layout** — which servers cache which bytes of each file (including
//!    any redundancy: replicas or parity shards),
//! 2. **Read plan** — which cached chunks a read fetches, how many of the
//!    fetches must complete before the file is ready (`wait_for < fetches`
//!    models EC-Cache's late binding), and any post-fetch CPU cost
//!    (decoding),
//! 3. **Write plan** — which chunks a write produces and any pre-write CPU
//!    cost (encoding).
//!
//! The event-driven simulator (`spcache-cluster`) and the real in-memory
//! store (`spcache-store`) both execute these plans, so SP-Cache,
//! EC-Cache, selective replication, simple partition and fixed-size
//! chunking are all driven through one interface.

use serde::{Deserialize, Serialize};
use spcache_sim::Xoshiro256StarStar;

use crate::file::{FileId, FileSet};

/// One cached chunk: `bytes` of a file resident on `server`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Hosting server.
    pub server: usize,
    /// Chunk size in bytes.
    pub bytes: f64,
}

/// Where one file's chunks live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileLayout {
    /// Every chunk cached for this file, redundancy included.
    pub chunks: Vec<Chunk>,
}

impl FileLayout {
    /// Total cached bytes for this file (≥ the file size when the scheme
    /// is redundant).
    pub fn cached_bytes(&self) -> f64 {
        self.chunks.iter().map(|c| c.bytes).sum()
    }
}

/// The full cluster layout produced by a scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    per_file: Vec<FileLayout>,
    n_servers: usize,
}

impl Layout {
    /// Wraps per-file layouts.
    ///
    /// # Panics
    ///
    /// Panics if any chunk references a server `>= n_servers`.
    pub fn new(per_file: Vec<FileLayout>, n_servers: usize) -> Self {
        for (i, fl) in per_file.iter().enumerate() {
            assert!(!fl.chunks.is_empty(), "file {i} has no chunks");
            for c in &fl.chunks {
                assert!(c.server < n_servers, "file {i}: server out of range");
                assert!(c.bytes > 0.0, "file {i}: non-positive chunk");
            }
        }
        Layout {
            per_file,
            n_servers,
        }
    }

    /// Number of files laid out.
    pub fn len(&self) -> usize {
        self.per_file.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.per_file.is_empty()
    }

    /// Cluster size.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The layout of file `i`.
    pub fn file(&self, i: FileId) -> &FileLayout {
        &self.per_file[i]
    }

    /// Replaces file `i`'s layout (repartitioning).
    pub fn set_file(&mut self, i: FileId, fl: FileLayout) {
        assert!(!fl.chunks.is_empty());
        for c in &fl.chunks {
            assert!(c.server < self.n_servers);
        }
        self.per_file[i] = fl;
    }

    /// Total bytes cached cluster-wide (the memory-footprint metric; the
    /// paper's headline is SP-Cache using 40% less than EC-Cache).
    pub fn total_cached_bytes(&self) -> f64 {
        self.per_file.iter().map(FileLayout::cached_bytes).sum()
    }

    /// Bytes cached per server.
    pub fn bytes_per_server(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.n_servers];
        for fl in &self.per_file {
            for c in &fl.chunks {
                out[c.server] += c.bytes;
            }
        }
        out
    }

    /// Cache redundancy relative to the raw file bytes:
    /// `cached/raw − 1` (0 for SP-Cache, 0.4 for (10,14) EC-Cache).
    pub fn redundancy(&self, files: &FileSet) -> f64 {
        self.total_cached_bytes() / files.total_bytes() - 1.0
    }
}

/// One fetch of a planned read: the chunk plus its *stable identity* —
/// the index into [`FileLayout::chunks`]. The identity is what cache-hit
/// accounting keys on (EC-Cache fetches a different random shard subset on
/// every read; without the index, the same shard would look like a
/// different object each time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedFetch {
    /// Index of this chunk within the file's layout.
    pub index: usize,
    /// The chunk (server + bytes).
    pub chunk: Chunk,
}

/// A planned read: fetch `fetches`, consider the file ready when
/// `wait_for` of them have completed, then spend `post_cost` seconds of
/// CPU (decode/reassembly).
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPlan {
    /// Chunks to fetch in parallel.
    pub fetches: Vec<PlannedFetch>,
    /// How many fetches must finish (≤ `fetches.len()`); fewer models
    /// late binding.
    pub wait_for: usize,
    /// Post-completion CPU seconds (EC decode; 0 for everything else).
    pub post_cost: f64,
}

impl ReadPlan {
    /// Plans a fetch of every chunk in `layout_chunks`, waiting for all —
    /// the plain fork-join shared by SP-Cache, simple partition and
    /// fixed-size chunking.
    pub fn all_of(layout_chunks: &[Chunk]) -> Self {
        ReadPlan {
            fetches: layout_chunks
                .iter()
                .enumerate()
                .map(|(index, &chunk)| PlannedFetch { index, chunk })
                .collect(),
            wait_for: layout_chunks.len(),
            post_cost: 0.0,
        }
    }
}

impl ReadPlan {
    /// Validates internal consistency.
    pub fn validate(&self) {
        assert!(!self.fetches.is_empty(), "read plan with no fetches");
        assert!(
            self.wait_for >= 1 && self.wait_for <= self.fetches.len(),
            "wait_for out of range"
        );
        assert!(self.post_cost >= 0.0);
    }
}

/// A planned write: spend `pre_cost` CPU seconds (encode), then write all
/// chunks in parallel; the write completes when the slowest chunk lands.
#[derive(Debug, Clone, PartialEq)]
pub struct WritePlan {
    /// Chunks to write in parallel.
    pub writes: Vec<Chunk>,
    /// Pre-write CPU seconds (EC encode; 0 for everything else).
    pub pre_cost: f64,
}

impl WritePlan {
    /// Total bytes pushed over the network.
    pub fn total_bytes(&self) -> f64 {
        self.writes.iter().map(|c| c.bytes).sum()
    }
}

/// A cluster-caching scheme: SP-Cache or one of the baselines.
///
/// Implementations must be deterministic given the `rng` argument — the
/// experiments rely on replayable runs.
pub trait CachingScheme {
    /// Human-readable name used in experiment output.
    fn name(&self) -> String;

    /// Lays out every file across `n_servers`.
    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout;

    /// Plans one read of `file`.
    fn read_plan(
        &self,
        file: FileId,
        files: &FileSet,
        layout: &Layout,
        rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan;

    /// Plans one write of `file`.
    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout2() -> Layout {
        Layout::new(
            vec![
                FileLayout {
                    chunks: vec![
                        Chunk {
                            server: 0,
                            bytes: 50.0,
                        },
                        Chunk {
                            server: 1,
                            bytes: 50.0,
                        },
                    ],
                },
                FileLayout {
                    chunks: vec![Chunk {
                        server: 2,
                        bytes: 30.0,
                    }],
                },
            ],
            3,
        )
    }

    #[test]
    fn layout_accounting() {
        let l = layout2();
        assert_eq!(l.total_cached_bytes(), 130.0);
        assert_eq!(l.bytes_per_server(), vec![50.0, 50.0, 30.0]);
        assert_eq!(l.file(0).cached_bytes(), 100.0);
    }

    #[test]
    fn redundancy_zero_for_exact_layout() {
        let l = layout2();
        let files = FileSet::from_parts(&[100.0, 30.0], &[0.5, 0.5]);
        assert!(l.redundancy(&files).abs() < 1e-12);
    }

    #[test]
    fn redundancy_positive_with_replicas() {
        let l = Layout::new(
            vec![FileLayout {
                chunks: vec![
                    Chunk {
                        server: 0,
                        bytes: 100.0,
                    },
                    Chunk {
                        server: 1,
                        bytes: 100.0,
                    },
                ],
            }],
            2,
        );
        let files = FileSet::from_parts(&[100.0], &[1.0]);
        assert!((l.redundancy(&files) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_file_replaces_layout() {
        let mut l = layout2();
        l.set_file(
            1,
            FileLayout {
                chunks: vec![Chunk {
                    server: 0,
                    bytes: 15.0,
                }],
            },
        );
        assert_eq!(l.file(1).chunks[0].server, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layout_rejects_bad_server() {
        let _ = Layout::new(
            vec![FileLayout {
                chunks: vec![Chunk {
                    server: 5,
                    bytes: 1.0,
                }],
            }],
            3,
        );
    }

    #[test]
    fn read_plan_validation() {
        let plan = ReadPlan::all_of(&[Chunk {
            server: 0,
            bytes: 1.0,
        }]);
        plan.validate();
        assert_eq!(plan.wait_for, 1);
        assert_eq!(plan.fetches[0].index, 0);
    }

    #[test]
    #[should_panic(expected = "wait_for out of range")]
    fn read_plan_rejects_excess_wait() {
        let mut plan = ReadPlan::all_of(&[Chunk {
            server: 0,
            bytes: 1.0,
        }]);
        plan.wait_for = 2;
        plan.validate();
    }

    #[test]
    fn all_of_preserves_chunk_identity() {
        let chunks = [
            Chunk {
                server: 3,
                bytes: 5.0,
            },
            Chunk {
                server: 1,
                bytes: 5.0,
            },
        ];
        let plan = ReadPlan::all_of(&chunks);
        assert_eq!(plan.fetches.len(), 2);
        assert_eq!(plan.fetches[1].index, 1);
        assert_eq!(plan.fetches[1].chunk.server, 1);
    }

    #[test]
    fn write_plan_bytes() {
        let plan = WritePlan {
            writes: vec![
                Chunk {
                    server: 0,
                    bytes: 10.0,
                },
                Chunk {
                    server: 1,
                    bytes: 10.0,
                },
            ],
            pre_cost: 0.0,
        };
        assert_eq!(plan.total_bytes(), 20.0);
    }
}

//! Byte-budgeted LRU over arbitrary keys — shared between the cluster
//! simulator (per-server partition caches, §7.6 hit-ratio experiment)
//! and the real store's memory-budgeted workers (DESIGN.md §4.13).
//!
//! Implementation: a doubly-linked list woven through a `HashMap` via
//! indices into a slab, giving O(1) touch/insert/evict without unsafe.
//! Freed slab slots are recycled through a free list, so a warmed cache
//! performs no per-operation allocation however long it churns.
//!
//! Sizes are `f64` bytes: the simulator accounts in fractional MB while
//! the store feeds exact partition lengths (integers are exact in an
//! `f64` far beyond any realistic budget).

use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug, Clone, Copy)]
struct Node<K> {
    key: K,
    bytes: f64,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A byte-budgeted LRU set of entries keyed by `K`.
#[derive(Debug, Clone)]
pub struct LruCache<K> {
    capacity: f64,
    used: f64,
    map: HashMap<K, usize>,
    slab: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    hits: u64,
    misses: u64,
}

impl<K: Copy + Eq + Hash> LruCache<K> {
    /// An empty cache with a byte budget. `f64::INFINITY` disables
    /// eviction.
    ///
    /// # Panics
    ///
    /// Panics on non-positive capacity.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        LruCache {
            capacity,
            used: 0.0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Accesses `key` of `bytes` size: returns `true` on a hit (and
    /// refreshes recency); on a miss, inserts the entry, evicting
    /// least-recently-used entries until it fits.
    ///
    /// Entries larger than the whole capacity are *not* cached (they
    /// would evict everything for nothing) and always miss.
    pub fn access(&mut self, key: K, bytes: f64) -> bool {
        debug_assert!(bytes >= 0.0);
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.unlink(idx);
            self.push_front(idx);
            return true;
        }
        self.misses += 1;
        if bytes <= self.capacity {
            self.insert(key, bytes);
        }
        false
    }

    /// Touches `key` without inserting on a miss and without moving the
    /// hit/miss counters; returns whether it was resident.
    pub fn touch(&mut self, key: &K) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Inserts without counting a hit or miss (cache pre-warming);
    /// entries evicted to make room are dropped silently.
    pub fn insert(&mut self, key: K, bytes: f64) {
        self.insert_evicting_into(key, bytes, None);
    }

    /// Inserts `key`, appending every `(key, bytes)` pair evicted to
    /// make room onto `evicted` (the caller decides whether to spill or
    /// drop them). Returns whether `key` itself is resident afterwards —
    /// `false` only for entries larger than the whole capacity, which
    /// are refused and belong to the caller too.
    pub fn insert_evicting(&mut self, key: K, bytes: f64, evicted: &mut Vec<(K, f64)>) -> bool {
        self.insert_evicting_into(key, bytes, Some(evicted))
    }

    fn insert_evicting_into(
        &mut self,
        key: K,
        bytes: f64,
        mut out: Option<&mut Vec<(K, f64)>>,
    ) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            // Refresh size and recency.
            self.used -= self.slab[idx].bytes;
            self.used += bytes;
            self.slab[idx].bytes = bytes;
            self.unlink(idx);
            self.push_front(idx);
            self.evict_to_fit(out.as_deref_mut());
            return self.map.contains_key(&key);
        }
        if bytes > self.capacity {
            return false;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Node {
                    key,
                    bytes,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Node {
                    key,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.used += bytes;
        self.push_front(idx);
        self.evict_to_fit(out);
        true
    }

    fn evict_to_fit(&mut self, mut out: Option<&mut Vec<(K, f64)>>) {
        while self.used > self.capacity && self.tail != NIL {
            let idx = self.tail;
            // Never evict the entry just inserted at head if it is alone.
            if idx == self.head && self.map.len() == 1 {
                break;
            }
            let node = self.slab[idx];
            self.unlink(idx);
            self.map.remove(&node.key);
            self.used -= node.bytes;
            self.free.push(idx);
            if let Some(out) = out.as_deref_mut() {
                out.push((node.key, node.bytes));
            }
        }
    }

    /// Removes `key` (a deleted or renamed entry), returning its size if
    /// it was resident.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let idx = self.map.remove(key)?;
        let bytes = self.slab[idx].bytes;
        self.unlink(idx);
        self.used -= bytes;
        self.free.push(idx);
        Some(bytes)
    }

    /// Whether `key` is resident (no recency update, no counters).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> f64 {
        self.used
    }

    /// The byte budget.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry and resets byte accounting (hit/miss counters
    /// are kept; see [`LruCache::reset_counters`]).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0.0;
    }

    /// `(hits, misses)` counted by [`LruCache::access`].
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio so far (0 when nothing was accessed).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets the hit/miss counters (e.g. after warm-up).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = LruCache::new(100.0);
        c.insert((0, 0), 10.0);
        assert!(c.access((0, 0), 10.0));
        assert_eq!(c.counters(), (1, 0));
    }

    #[test]
    fn miss_inserts() {
        let mut c = LruCache::new(100.0);
        assert!(!c.access((1, 2), 10.0));
        assert!(c.contains(&(1, 2)));
        assert_eq!(c.counters(), (0, 1));
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut c = LruCache::new(30.0);
        c.insert((0, 0), 10.0);
        c.insert((1, 0), 10.0);
        c.insert((2, 0), 10.0);
        // Touch (0,0) so (1,0) is now least recent.
        assert!(c.access((0, 0), 10.0));
        c.insert((3, 0), 10.0);
        assert!(!c.contains(&(1, 0)), "LRU entry should be evicted");
        assert!(c.contains(&(0, 0)));
        assert!(c.contains(&(2, 0)));
        assert!(c.contains(&(3, 0)));
        assert!((c.used_bytes() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_partition_never_cached() {
        let mut c = LruCache::new(5.0);
        assert!(!c.access((0, 0), 10.0));
        assert!(!c.contains(&(0, 0)));
        assert!(!c.access((0, 0), 10.0), "still a miss");
        assert_eq!(c.counters(), (0, 2));
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruCache::new(100.0);
        c.insert((0, 0), 10.0);
        c.insert((0, 0), 40.0);
        assert!((c.used_bytes() - 40.0).abs() < 1e-9);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut c = LruCache::new(50.0);
        for i in 0..1000 {
            c.access((i, 0), 7.0);
            assert!(c.used_bytes() <= 50.0 + 1e-9, "at step {i}");
        }
        assert_eq!(c.len(), 7); // floor(50/7)
    }

    #[test]
    fn hit_ratio_steady_state() {
        // Working set fits: after warm-up everything hits.
        let mut c = LruCache::new(100.0);
        for round in 0..10 {
            for i in 0..10 {
                let hit = c.access((i, 0), 10.0);
                if round > 0 {
                    assert!(hit, "round {round}, item {i}");
                }
            }
        }
        c.reset_counters();
        for i in 0..10 {
            c.access((i, 0), 10.0);
        }
        assert_eq!(c.hit_ratio(), 1.0);
    }

    #[test]
    fn thrash_when_working_set_exceeds_capacity() {
        // Sequential scan over 2x the capacity with LRU = 0% hits.
        let mut c = LruCache::new(100.0);
        for _ in 0..5 {
            for i in 0..20 {
                c.access((i, 0), 10.0);
            }
        }
        assert_eq!(c.counters().0, 0, "LRU must thrash on sequential scan");
    }

    #[test]
    fn slab_reuse_keeps_len_consistent() {
        let mut c = LruCache::new(20.0);
        for i in 0..100 {
            c.access((i, 0), 10.0);
        }
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() <= 20.0);
    }

    #[test]
    fn insert_evicting_reports_what_fell_out() {
        let mut c = LruCache::new(30.0);
        c.insert(1u64, 10.0);
        c.insert(2u64, 10.0);
        c.insert(3u64, 10.0);
        let mut evicted = Vec::new();
        assert!(c.insert_evicting(4u64, 20.0, &mut evicted));
        // 1 and 2 (the two coldest) must fall out to fit 20 bytes
        // next to 3's 10 under the 30-byte capacity.
        assert_eq!(evicted, vec![(1u64, 10.0), (2u64, 10.0)]);
        assert!(c.contains(&3) && c.contains(&4));
        assert!(c.used_bytes() <= c.capacity());
        // An oversized entry is refused, evicting nothing.
        evicted.clear();
        assert!(!c.insert_evicting(5u64, 31.0, &mut evicted));
        assert!(evicted.is_empty());
        assert!(!c.contains(&5));
    }

    #[test]
    fn remove_and_touch() {
        let mut c = LruCache::new(30.0);
        c.insert('a', 10.0);
        c.insert('b', 10.0);
        assert_eq!(c.remove(&'a'), Some(10.0));
        assert_eq!(c.remove(&'a'), None);
        assert!((c.used_bytes() - 10.0).abs() < 1e-9);
        assert!(c.touch(&'b'));
        assert!(!c.touch(&'a'));
        // Counters untouched by touch/remove.
        assert_eq!(c.counters(), (0, 0));
        // The freed slot is recycled.
        c.insert('c', 10.0);
        c.insert('d', 10.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = LruCache::new(30.0);
        c.insert(1u32, 10.0);
        c.insert(2u32, 10.0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0.0);
        c.insert(3u32, 30.0);
        assert!(c.contains(&3));
    }
}

//! Property-based tests of the core algorithms.

use proptest::prelude::*;

use rand::SeedableRng;
use spcache_core::file::{FileMeta, FileSet};
use spcache_core::forkjoin::{file_latency_bound, SolverConfig};
use spcache_core::goodput::Goodput;
use spcache_core::mg1::ClusterModel;
use spcache_core::partition::{partition_counts_clamped, PartitionMap};
use spcache_core::placement::{random_partition_map, HashRing};
use spcache_core::repartition::plan_repartition;
use spcache_core::scheme::CachingScheme;
use spcache_core::variance::{sp_variance, sp_variance_monte_carlo};
use spcache_core::SpCache;
use spcache_sim::Xoshiro256StarStar;

/// A strategy for small normalized popularity vectors.
fn popularities(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, 1..max_n).prop_map(|mut v| {
        let total: f64 = v.iter().sum();
        for x in &mut v {
            *x /= total;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 9's objective is convex in z: the golden-section result beats
    /// any probe point.
    #[test]
    fn bound_is_global_minimum(
        moments in proptest::collection::vec((0.001f64..10.0, 0.0f64..100.0), 2..12),
        probes in proptest::collection::vec(-50.0f64..50.0, 8),
    ) {
        let cfg = SolverConfig::default();
        let bound = file_latency_bound(&moments, &cfg);
        let objective = |z: f64| {
            let mut acc = z;
            for &(m, v) in &moments {
                let d = m - z;
                acc += 0.5 * (d + (d * d + v).sqrt());
            }
            acc
        };
        for &z in &probes {
            prop_assert!(bound <= objective(z) + 1e-6,
                "bound {} beaten at z={}: {}", bound, z, objective(z));
        }
    }

    /// The bound dominates the max of means (a lower bound on E[max]).
    #[test]
    fn bound_dominates_max_mean(
        moments in proptest::collection::vec((0.001f64..10.0, 0.0f64..100.0), 1..12),
    ) {
        let cfg = SolverConfig::default();
        let bound = file_latency_bound(&moments, &cfg);
        let max_mean = moments.iter().map(|&(m, _)| m).fold(f64::MIN, f64::max);
        prop_assert!(bound >= max_mean - 1e-9);
    }

    /// Per-server utilization in the queueing model equals the exact sum
    /// of per-class loads, and splitting never increases max utilization.
    #[test]
    fn mg1_utilization_consistent(
        pops in popularities(20),
        k_hot in 1usize..8,
    ) {
        let files = FileSet::uniform_size(10e6, &pops);
        let n_servers = 8;
        let rates = files.request_rates(4.0);
        let alpha_none = 0.0;
        let alpha_split = k_hot as f64 / files.max_load();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let map_a = random_partition_map(&files, alpha_none, n_servers, &mut rng);
        let map_b = random_partition_map(&files, alpha_split, n_servers, &mut rng);
        let bw = vec![100e6; n_servers];
        let a = ClusterModel::build(&files, &rates, &map_a, &bw);
        let b = ClusterModel::build(&files, &rates, &map_b, &bw);
        // Total utilization (sum of rho) is invariant under splitting:
        // the same bytes/sec must be served either way.
        let total = |m: &ClusterModel| (0..n_servers).map(|s| m.server(s).rho).sum::<f64>();
        prop_assert!((total(&a) - total(&b)).abs() < 1e-9,
            "total rho changed: {} vs {}", total(&a), total(&b));
    }

    /// Clamped partition counts never exceed the cluster and respect the
    /// per-file load ordering.
    #[test]
    fn clamped_counts_ordered_by_load(
        pops in popularities(30),
        alpha_scale in 0.0f64..3.0,
        n_servers in 1usize..40,
    ) {
        let files = FileSet::uniform_size(50e6, &pops);
        let alpha = alpha_scale / files.max_load().max(1.0);
        let ks = partition_counts_clamped(&files, alpha, n_servers);
        for (i, &k) in ks.iter().enumerate() {
            prop_assert!(k >= 1 && k <= n_servers);
            for (j, &k2) in ks.iter().enumerate() {
                if files.get(i).load() >= files.get(j).load() {
                    prop_assert!(k >= k2, "load order violated at {i},{j}");
                }
            }
        }
    }

    /// SpCache layouts are always redundancy-free and valid.
    #[test]
    fn spcache_layout_invariants(
        pops in popularities(25),
        alpha_scale in 0.0f64..40.0,
        seed in any::<u64>(),
    ) {
        let files = FileSet::uniform_size(10e6, &pops);
        let n_servers = 10;
        let alpha = alpha_scale / files.max_load().max(1.0);
        let scheme = SpCache::with_alpha(alpha);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let layout = scheme.build_layout(&files, n_servers, &mut rng);
        prop_assert!((layout.redundancy(&files)).abs() < 1e-9);
        for i in 0..files.len() {
            let chunks = &layout.file(i).chunks;
            // Distinct servers.
            let mut servers: Vec<usize> = chunks.iter().map(|c| c.server).collect();
            servers.sort_unstable();
            servers.dedup();
            prop_assert_eq!(servers.len(), chunks.len());
            // Chunks reassemble to the file size.
            let total: f64 = chunks.iter().map(|c| c.bytes).sum();
            prop_assert!((total - files.get(i).size_bytes).abs() < 1e-6);
        }
    }

    /// Monte-Carlo and analytic SP variance agree on arbitrary workloads.
    #[test]
    fn variance_analytic_matches_mc(
        pops in popularities(15),
        k_hot in 1usize..10,
        seed in any::<u64>(),
    ) {
        let files = FileSet::uniform_size(100e6, &pops);
        let n_servers = 12;
        let alpha = k_hot as f64 / files.max_load();
        let analytic = sp_variance(&files, alpha, n_servers);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mc = sp_variance_monte_carlo(&files, alpha, n_servers, 30_000, &mut rng);
        if analytic > 1e-6 {
            prop_assert!((mc - analytic).abs() / analytic < 0.25,
                "MC {} vs analytic {}", mc, analytic);
        } else {
            prop_assert!(mc.abs() < 1e-3);
        }
    }

    /// Repartition plans: byte accounting is non-negative and zero only
    /// for no-op plans.
    #[test]
    fn repartition_bytes_sane(
        pops in popularities(20),
        seed in any::<u64>(),
        grow in 1usize..6,
    ) {
        let files = FileSet::uniform_size(20e6, &pops);
        let n_servers = 10;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let old = random_partition_map(&files, 0.0, n_servers, &mut rng);
        let counts: Vec<usize> = (0..files.len()).map(|i| if i == 0 { grow } else { 1 }).collect();
        let plan = plan_repartition(&files, &old, &counts, &mut rng);
        let bytes = plan.total_network_bytes(&files);
        prop_assert!(bytes >= 0.0);
        if grow == 1 {
            prop_assert_eq!(plan.jobs.len(), 0);
            prop_assert_eq!(bytes, 0.0);
        } else {
            prop_assert_eq!(plan.jobs.len(), 1);
            // Moving file 0 can never cost more than pulling + pushing it
            // entirely.
            prop_assert!(bytes <= 2.0 * files.get(0).size_bytes + 1e-6);
        }
    }

    /// Goodput factors are always in (0, 1] and monotone.
    #[test]
    fn goodput_bounded_monotone(decay in 0.0f64..0.3, floor in 0.05f64..1.0, c in 1usize..500) {
        let g = Goodput { decay, floor };
        let f = g.factor(c);
        prop_assert!(f > 0.0 && f <= 1.0);
        prop_assert!(g.factor(c + 1) <= f);
    }

    /// Consistent hashing returns the same servers for the same key and
    /// distinct servers for any k.
    #[test]
    fn hash_ring_properties(key in any::<u64>(), k in 1usize..10) {
        let ring = HashRing::new(10, 32);
        let a = ring.servers_for(key, k);
        let b = ring.servers_for(key, k);
        prop_assert_eq!(&a, &b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
    }

    /// FileSet invariants survive arbitrary valid constructions.
    #[test]
    fn fileset_accounting(
        sizes in proptest::collection::vec(1.0f64..1e9, 1..40),
        seed in any::<u64>(),
    ) {
        let n = sizes.len();
        let pops: Vec<f64> = {
            // Deterministic pseudo-random popularity from the seed.
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let raw: Vec<f64> = (0..n)
                .map(|_| spcache_workload::dist::unit_f64(&mut rng) + 1e-3)
                .collect();
            let t: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / t).collect()
        };
        let files = FileSet::from_parts(&sizes, &pops);
        prop_assert!((files.total_bytes() - sizes.iter().sum::<f64>()).abs() < 1.0);
        let max = files.max_load();
        for (_, f) in files.iter() {
            prop_assert!(f.load() <= max + 1e-9);
        }
        // PartitionMap from any clamped counts is valid.
        let ks = partition_counts_clamped(&files, 1.0 / max, 7);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 1);
        let placements: Vec<Vec<usize>> = ks
            .iter()
            .map(|&k| spcache_core::placement::random_distinct(k, 7, &mut rng))
            .collect();
        let map = PartitionMap::new(placements, 7);
        prop_assert_eq!(map.partition_counts(), ks);
    }
}

/// Non-proptest regression: FileMeta rejects NaN-ish invalid input.
#[test]
fn file_meta_validation() {
    assert!(std::panic::catch_unwind(|| FileMeta::new(-1.0, 0.5)).is_err());
    assert!(std::panic::catch_unwind(|| FileMeta::new(1.0, -0.1)).is_err());
}

//! Arithmetic in GF(2⁸).
//!
//! The field is GF(2)[x] / (x⁸+x⁴+x³+x²+1), i.e. reduction polynomial
//! `0x11D` with generator `2` — the construction used by most storage
//! erasure codes (ISA-L, Jerasure, Backblaze RS).
//!
//! Element addition is XOR; multiplication uses compile-time exp/log
//! tables. The hot encode/decode path is not per-byte multiplication but
//! the slice kernels [`mul_slice`] / [`mul_acc_slice`]: per coding row they
//! stream over shard-sized byte slices. Two implementations are provided —
//! a log/exp-table kernel and an ISA-L-style split-nibble kernel
//! ([`mul_acc_slice_nibble`]) that replaces the log/exp indirection with
//! two 16-entry product tables; the `rs_codec` bench compares them (the
//! ablation listed in DESIGN.md §5).

/// Reduction polynomial x⁸+x⁴+x³+x²+1 (the `0x1D` low byte).
pub const POLY: u16 = 0x11D;

/// exp/log tables, built at compile time.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

const fn build_tables() -> Tables {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Duplicate the table so exp[log a + log b] needs no mod 255.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    Tables { exp, log }
}

static TABLES: Tables = build_tables();

/// Field addition (and subtraction): XOR.
#[inline(always)]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via log/exp tables.
#[inline(always)]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        TABLES.exp[TABLES.log[a as usize] as usize + TABLES.log[b as usize] as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no multiplicative inverse in GF(256)");
    TABLES.exp[255 - TABLES.log[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
///
/// Panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        let la = TABLES.log[a as usize] as usize;
        let lb = TABLES.log[b as usize] as usize;
        TABLES.exp[la + 255 - lb]
    }
}

/// `a^n` by repeated exp/log arithmetic.
#[inline]
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = TABLES.log[a as usize] as u64 * n as u64 % 255;
    TABLES.exp[l as usize]
}

/// The generator element 2^i.
#[inline]
pub fn exp2(i: usize) -> u8 {
    TABLES.exp[i % 255]
}

/// `dst[i] = c * src[i]` — the row-initialization kernel.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "shard length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let lc = TABLES.log[c as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = if s == 0 {
            0
        } else {
            TABLES.exp[lc + TABLES.log[s as usize] as usize]
        };
    }
}

/// `dst[i] ^= c * src[i]` — the accumulate kernel dominating encode and
/// decode time (one call per (coding row × shard) pair).
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "shard length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let lc = TABLES.log[c as usize] as usize;
    for (d, &s) in dst.iter_mut().zip(src) {
        if s != 0 {
            *d ^= TABLES.exp[lc + TABLES.log[s as usize] as usize];
        }
    }
}

/// ISA-L-style split-nibble accumulate kernel: precomputes the 16 products
/// of `c` with each low nibble and each (shifted) high nibble, then does two
/// table lookups and one XOR per byte with no zero-test branch.
pub fn mul_acc_slice_nibble(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "shard length mismatch");
    if c == 0 {
        return;
    }
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for i in 0..16u8 {
        lo[i as usize] = mul(c, i);
        hi[i as usize] = mul(c, i << 4);
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= lo[(s & 0x0F) as usize] ^ hi[(s >> 4) as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(add(0b1010, 0b0110), 0b1100);
        assert_eq!(add(7, 7), 0);
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Reference: schoolbook carry-less multiply + reduction by 0x11D.
        fn slow_mul(mut a: u8, b: u8) -> u8 {
            let mut prod: u8 = 0;
            let mut b = b;
            for _ in 0..8 {
                if b & 1 != 0 {
                    prod ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (POLY & 0xFF) as u8;
                }
                b >>= 1;
            }
            prod
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        let samples = [0u8, 1, 2, 3, 17, 91, 128, 200, 255];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &samples {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        let samples = [1u8, 2, 5, 77, 130, 254];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let ia = inv(a);
            assert_eq!(mul(a, ia), 1, "a={a}");
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(3, 0);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        inv(0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for &a in &[2u8, 3, 29, 255] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group: first 255 powers distinct.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = exp2(i);
            assert!(!seen[v as usize], "2^{i} repeats");
            seen[v as usize] = true;
        }
        assert_eq!(exp2(255), 1); // wraps
    }

    #[test]
    fn slice_kernels_agree() {
        let src: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for &c in &[0u8, 1, 2, 73, 255] {
            let mut a = vec![0xAA; 1000];
            let mut b = vec![0xAA; 1000];
            mul_acc_slice(c, &src, &mut a);
            mul_acc_slice_nibble(c, &src, &mut b);
            assert_eq!(a, b, "c={c}");

            let mut d = vec![0u8; 1000];
            mul_slice(c, &src, &mut d);
            let expect: Vec<u8> = src.iter().map(|&s| mul(c, s)).collect();
            assert_eq!(d, expect, "c={c}");
        }
    }

    #[test]
    fn mul_slice_special_cases() {
        let src = vec![9u8, 0, 255];
        let mut dst = vec![1u8; 3];
        mul_slice(0, &src, &mut dst);
        assert_eq!(dst, vec![0, 0, 0]);
        mul_slice(1, &src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn slice_length_mismatch_panics() {
        let mut d = vec![0u8; 2];
        mul_slice(3, &[1, 2, 3], &mut d);
    }
}

#![warn(missing_docs)]

//! Erasure-coding substrate for the EC-Cache baseline.
//!
//! EC-Cache (Rashmi et al., OSDI'16) — the state-of-the-art system SP-Cache
//! is compared against — stores each file as a systematic `(k, n)`
//! Reed–Solomon code: `k` data shards plus `n − k` parity shards, any `k`
//! of which reconstruct the file. The paper used Intel ISA-L; this crate
//! reimplements the same algebra from scratch:
//!
//! * [`gf256`] — arithmetic in GF(2⁸) with the polynomial
//!   `x⁸+x⁴+x³+x²+1` (0x11D), including the byte-slice kernels
//!   (`mul_slice`, `mul_acc_slice`) that dominate encode/decode time,
//! * [`matrix`] — dense matrices over GF(2⁸) with Gauss-Jordan inversion
//!   and Cauchy/Vandermonde constructions,
//! * [`rs`] — the systematic Reed–Solomon codec: encode, verify,
//!   reconstruct-from-any-k, plus the file split/join helpers shared with
//!   SP-Cache's (coding-free) partitioner.
//!
//! The decode overhead measured on this codec regenerates the paper's
//! Fig. 4 (decoding time normalized by read latency, growing with file
//! size).

pub mod gf256;
pub mod matrix;
pub mod rs;

pub use matrix::Matrix;
pub use rs::{join_shards, join_shards_bytes, split_into_shards, split_shards_bytes, ReedSolomon};

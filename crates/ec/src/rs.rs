//! Systematic Reed–Solomon erasure codec and file split/join helpers.
//!
//! A `(k, n)` code stores a file as `k` equal data shards plus `n − k`
//! parity shards. The encoding matrix is the `n × k` systematic MDS matrix
//! (identity on top of parity rows); any `k` surviving shards reconstruct
//! everything by inverting the corresponding `k × k` row block — exactly
//! the structure EC-Cache builds on ISA-L.

use bytes::Bytes;

use crate::gf256;
use crate::matrix::Matrix;

/// Errors from the Reed–Solomon codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Fewer than `k` shards present — reconstruction impossible.
    TooFewShards {
        /// Shards available.
        present: usize,
        /// Shards required (`k`).
        needed: usize,
    },
    /// Shards have inconsistent lengths.
    ShardLengthMismatch,
    /// Shard vector length differs from `n`.
    WrongShardCount {
        /// Shards supplied.
        got: usize,
        /// Shards expected (`n`).
        expected: usize,
    },
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::TooFewShards { present, needed } => {
                write!(f, "only {present} shards present, need {needed}")
            }
            RsError::ShardLengthMismatch => write!(f, "shard lengths differ"),
            RsError::WrongShardCount { got, expected } => {
                write!(f, "got {got} shards, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic `(k, n)` Reed–Solomon codec.
///
/// # Examples
///
/// ```
/// use spcache_ec::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 6); // 4 data + 2 parity
/// let data: Vec<u8> = (0..400u32).map(|i| (i % 251) as u8).collect();
/// let shards = rs.encode_bytes(&data);
/// assert_eq!(shards.len(), 6);
///
/// // Lose any two shards and reconstruct.
/// let mut partial: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
/// partial[0] = None;
/// partial[5] = None;
/// let recovered = rs.reconstruct_data(&mut partial).unwrap();
/// assert_eq!(&recovered[..data.len()], &data[..]);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// `n × k` systematic encoding matrix.
    encode: Matrix,
}

impl ReedSolomon {
    /// Creates a `(k, n)` codec: `k` data shards, `n − k` parity shards.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k <= n <= 255`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(n >= k, "n must be at least k");
        assert!(n <= 255, "GF(256) supports at most 255 shards");
        ReedSolomon {
            k,
            n,
            encode: Matrix::systematic_vandermonde(n, k),
        }
    }

    /// Creates a `(k, n)` codec on the **Cauchy** systematic matrix
    /// ([`Matrix::systematic_cauchy`]) instead of Vandermonde — the
    /// construction the integrity/parity tier uses for hot-file parity
    /// partitions, where the MDS property must hold for every `k`-of-`n`
    /// subset without an evaluation-point argument.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k <= n` and `n + k <= 256`.
    pub fn new_cauchy(k: usize, n: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(n >= k, "n must be at least k");
        ReedSolomon {
            k,
            n,
            encode: Matrix::systematic_cauchy(n, k),
        }
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Total number of shards.
    pub fn total_shards(&self) -> usize {
        self.n
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.n - self.k
    }

    /// Memory overhead `(n − k)/k` — 0.4 for the paper's (10, 14) code.
    pub fn overhead(&self) -> f64 {
        (self.n - self.k) as f64 / self.k as f64
    }

    /// Splits `data` into `k` padded shards and appends `n − k` parity
    /// shards. Shard length is `ceil(len / k)` (the last data shard is
    /// zero-padded).
    pub fn encode_bytes(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let mut shards = split_into_shards(data, self.k);
        let shard_len = shards[0].len();
        for p in 0..self.parity_shards() {
            let row = self.encode.row(self.k + p).to_vec();
            let mut parity = vec![0u8; shard_len];
            for (j, shard) in shards.iter().take(self.k).enumerate() {
                gf256::mul_acc_slice(row[j], shard, &mut parity);
            }
            shards.push(parity);
        }
        shards
    }

    /// Verifies that parity shards are consistent with the data shards.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, RsError> {
        if shards.len() != self.n {
            return Err(RsError::WrongShardCount {
                got: shards.len(),
                expected: self.n,
            });
        }
        let shard_len = shards[0].len();
        if shards.iter().any(|s| s.len() != shard_len) {
            return Err(RsError::ShardLengthMismatch);
        }
        let mut buf = vec![0u8; shard_len];
        for p in 0..self.parity_shards() {
            buf.fill(0);
            let row = self.encode.row(self.k + p);
            for j in 0..self.k {
                gf256::mul_acc_slice(row[j], &shards[j], &mut buf);
            }
            if buf != shards[self.k + p] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Reconstructs **all** missing shards in place. `shards[i] = None`
    /// marks an erasure. Requires at least `k` present shards.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.n {
            return Err(RsError::WrongShardCount {
                got: shards.len(),
                expected: self.n,
            });
        }
        let present: Vec<usize> = (0..self.n).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(RsError::TooFewShards {
                present: present.len(),
                needed: self.k,
            });
        }
        let shard_len = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != shard_len)
        {
            return Err(RsError::ShardLengthMismatch);
        }
        if present.len() == self.n {
            return Ok(()); // nothing missing
        }

        // Decode matrix: rows of the encoding matrix for the first k
        // surviving shards, inverted.
        let rows: Vec<usize> = present.iter().take(self.k).copied().collect();
        let sub = self.encode.submatrix_rows(&rows);
        let inv = sub
            .inverted()
            .expect("any k rows of a systematic MDS matrix are invertible");

        // Recover data shards first: data_j = sum_i inv[j][i] * shard(rows[i]).
        let missing_data: Vec<usize> = (0..self.k).filter(|&i| shards[i].is_none()).collect();
        let mut recovered_data: Vec<(usize, Vec<u8>)> = Vec::with_capacity(missing_data.len());
        for &j in &missing_data {
            let mut out = vec![0u8; shard_len];
            for (i, &r) in rows.iter().enumerate() {
                let c = inv[(j, i)];
                let src = shards[r].as_ref().expect("present");
                gf256::mul_acc_slice(c, src, &mut out);
            }
            recovered_data.push((j, out));
        }
        for (j, buf) in recovered_data {
            shards[j] = Some(buf);
        }

        // Now all data shards exist; recompute any missing parity.
        for p in 0..self.parity_shards() {
            let idx = self.k + p;
            if shards[idx].is_some() {
                continue;
            }
            let row = self.encode.row(idx).to_vec();
            let mut parity = vec![0u8; shard_len];
            for (j, c) in row.iter().enumerate().take(self.k) {
                let src = shards[j].as_ref().expect("data recovered");
                gf256::mul_acc_slice(*c, src, &mut parity);
            }
            shards[idx] = Some(parity);
        }
        Ok(())
    }

    /// Reconstructs and concatenates the `k` data shards (including any
    /// padding added at encode time).
    pub fn reconstruct_data(&self, shards: &mut [Option<Vec<u8>>]) -> Result<Vec<u8>, RsError> {
        self.reconstruct(shards)?;
        let shard_len = shards[0].as_ref().expect("reconstructed").len();
        let mut out = Vec::with_capacity(self.k * shard_len);
        for s in shards.iter().take(self.k) {
            out.extend_from_slice(s.as_ref().expect("reconstructed"));
        }
        Ok(out)
    }
}

/// Splits `data` into exactly `k` equal shards, zero-padding the tail.
/// This is also SP-Cache's *coding-free* partitioner: selective partition
/// is precisely "split into k, no parity".
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn split_into_shards(data: &[u8], k: usize) -> Vec<Vec<u8>> {
    assert!(k > 0, "cannot split into zero shards");
    let shard_len = data.len().div_ceil(k).max(1);
    let mut shards = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * shard_len).min(data.len());
        let end = ((i + 1) * shard_len).min(data.len());
        let mut shard = Vec::with_capacity(shard_len);
        shard.extend_from_slice(&data[start..end]);
        shard.resize(shard_len, 0);
        shards.push(shard);
    }
    shards
}

/// Zero-copy partitioner: slices one backing [`Bytes`] buffer into `k`
/// partition *views* sharing its allocation — no bytes move. The layout
/// matches [`split_into_shards`] (equal `ceil(len/k)` slots) except that
/// the tail partition is left short instead of zero-padded, exactly the
/// byte ranges `spcache_core::online::partition_range` describes.
/// [`join_shards_bytes`] reassembles either layout (it truncates at the
/// original length).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn split_shards_bytes(data: &Bytes, k: usize) -> Vec<Bytes> {
    assert!(k > 0, "cannot split into zero shards");
    let slot = data.len().div_ceil(k).max(1);
    (0..k)
        .map(|i| {
            let start = (i * slot).min(data.len());
            let end = ((i + 1) * slot).min(data.len());
            data.slice(start..end)
        })
        .collect()
}

/// Joins `k` shards back into a file of `original_len` bytes (dropping the
/// padding `split_into_shards` added).
///
/// # Panics
///
/// Panics if the shards cannot contain `original_len` bytes.
pub fn join_shards(shards: &[Vec<u8>], original_len: usize) -> Vec<u8> {
    let total: usize = shards.iter().map(Vec::len).sum();
    assert!(total >= original_len, "shards shorter than original file");
    let mut out = Vec::with_capacity(original_len);
    for s in shards {
        if out.len() >= original_len {
            break;
        }
        let take = (original_len - out.len()).min(s.len());
        out.extend_from_slice(&s[..take]);
    }
    out
}

/// Zero-copy variant of [`join_shards`] producing `Bytes` per shard slice
/// view; used by the store crate to avoid an extra copy on the read path.
pub fn join_shards_bytes(shards: &[Bytes], original_len: usize) -> Vec<u8> {
    let total: usize = shards.iter().map(Bytes::len).sum();
    assert!(total >= original_len, "shards shorter than original file");
    let mut out = Vec::with_capacity(original_len);
    for s in shards {
        if out.len() >= original_len {
            break;
        }
        let take = (original_len - out.len()).min(s.len());
        out.extend_from_slice(&s[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + 7) % 256) as u8).collect()
    }

    #[test]
    fn encode_produces_n_equal_shards() {
        let rs = ReedSolomon::new(10, 14);
        let data = sample_data(1003); // not divisible by 10
        let shards = rs.encode_bytes(&data);
        assert_eq!(shards.len(), 14);
        let len = shards[0].len();
        assert_eq!(len, 101); // ceil(1003/10)
        assert!(shards.iter().all(|s| s.len() == len));
    }

    #[test]
    fn verify_accepts_valid_and_rejects_corrupt() {
        let rs = ReedSolomon::new(4, 6);
        let data = sample_data(256);
        let mut shards = rs.encode_bytes(&data);
        assert_eq!(rs.verify(&shards), Ok(true));
        shards[5][3] ^= 0xFF;
        assert_eq!(rs.verify(&shards), Ok(false));
    }

    #[test]
    fn roundtrip_no_erasures() {
        let rs = ReedSolomon::new(3, 5);
        let data = sample_data(100);
        let shards = rs.encode_bytes(&data);
        let mut partial: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let rec = rs.reconstruct_data(&mut partial).unwrap();
        assert_eq!(&rec[..100], &data[..]);
    }

    #[test]
    fn recovers_from_any_max_erasure_pattern() {
        let rs = ReedSolomon::new(4, 7); // tolerates any 3 erasures
        let data = sample_data(512);
        let shards = rs.encode_bytes(&data);
        // All C(7,3) = 35 erasure patterns.
        for a in 0..7 {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    let mut partial: Vec<Option<Vec<u8>>> =
                        shards.iter().cloned().map(Some).collect();
                    partial[a] = None;
                    partial[b] = None;
                    partial[c] = None;
                    let rec = rs.reconstruct_data(&mut partial).unwrap();
                    assert_eq!(&rec[..512], &data[..], "erasures ({a},{b},{c})");
                    // Parity shards are also restored.
                    for (i, s) in partial.iter().enumerate() {
                        assert_eq!(s.as_ref().unwrap(), &shards[i], "shard {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_fails() {
        let rs = ReedSolomon::new(4, 6);
        let data = sample_data(64);
        let shards = rs.encode_bytes(&data);
        let mut partial: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        partial[0] = None;
        partial[1] = None;
        partial[2] = None;
        assert_eq!(
            rs.reconstruct(&mut partial),
            Err(RsError::TooFewShards {
                present: 3,
                needed: 4
            })
        );
    }

    #[test]
    fn wrong_shard_count_rejected() {
        let rs = ReedSolomon::new(2, 4);
        let mut partial: Vec<Option<Vec<u8>>> = vec![Some(vec![0u8; 4]); 3];
        assert_eq!(
            rs.reconstruct(&mut partial),
            Err(RsError::WrongShardCount {
                got: 3,
                expected: 4
            })
        );
    }

    #[test]
    fn inconsistent_lengths_rejected() {
        let rs = ReedSolomon::new(2, 3);
        let mut partial = vec![Some(vec![0u8; 4]), Some(vec![0u8; 5]), None];
        assert_eq!(
            rs.reconstruct(&mut partial),
            Err(RsError::ShardLengthMismatch)
        );
    }

    #[test]
    fn pure_replication_degenerate_codes() {
        // (1, 3): every shard is a replica of the data.
        let rs = ReedSolomon::new(1, 3);
        let data = sample_data(37);
        let shards = rs.encode_bytes(&data);
        assert_eq!(shards[0], data);
        assert_eq!(shards[1], data);
        assert_eq!(shards[2], data);
    }

    #[test]
    fn coding_free_mode_is_plain_split() {
        // (k, k): EC-Cache's "coding-free" configuration from Section 4.1.
        let rs = ReedSolomon::new(5, 5);
        let data = sample_data(100);
        let shards = rs.encode_bytes(&data);
        assert_eq!(shards, split_into_shards(&data, 5));
    }

    #[test]
    fn split_join_roundtrip_various_sizes() {
        for len in [0usize, 1, 9, 10, 11, 100, 1021] {
            for k in [1usize, 2, 3, 7, 10] {
                let data = sample_data(len);
                let shards = split_into_shards(&data, k);
                assert_eq!(shards.len(), k);
                let joined = join_shards(&shards, len);
                assert_eq!(joined, data, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn split_empty_file() {
        let shards = split_into_shards(&[], 4);
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.len() == 1)); // min shard len 1
        assert!(join_shards(&shards, 0).is_empty());
    }

    #[test]
    fn join_bytes_matches_join() {
        let data = sample_data(77);
        let shards = split_into_shards(&data, 3);
        let byte_shards: Vec<Bytes> = shards.iter().cloned().map(Bytes::from).collect();
        assert_eq!(join_shards_bytes(&byte_shards, 77), join_shards(&shards, 77));
    }

    #[test]
    fn overhead_matches_paper_configuration() {
        let rs = ReedSolomon::new(10, 14);
        assert!((rs.overhead() - 0.4).abs() < 1e-12);
        assert_eq!(rs.parity_shards(), 4);
    }
}

//! Dense matrices over GF(2⁸) with the constructions needed for
//! systematic MDS erasure codes.

use std::fmt;

use crate::gf256;

/// A row-major dense matrix over GF(2⁸).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// The all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0);
        Matrix { rows, cols, data }
    }

    /// A Vandermonde matrix: `V[i][j] = (i+1)^j` (rows indexed by distinct
    /// evaluation points, so any `cols × cols` sub-block built from distinct
    /// rows is invertible when points are distinct powers — used with the
    /// systematic transform in [`Matrix::systematic_vandermonde`]).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 255, "at most 255 distinct evaluation points");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = gf256::pow((i + 1) as u8, j as u32);
            }
        }
        m
    }

    /// A Cauchy matrix `C[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i` and `y_j = rows + j` (all distinct, so every square
    /// submatrix is invertible — the MDS property).
    ///
    /// # Panics
    ///
    /// Panics if `rows + cols > 256` (not enough distinct field elements).
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(rows + cols <= 256, "Cauchy needs rows+cols <= 256");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let x = i as u8;
                let y = (rows + j) as u8;
                m[(i, j)] = gf256::inv(x ^ y);
            }
        }
        m
    }

    /// The standard systematic MDS encoding matrix for a `(k, n)` code:
    /// take the `n × k` Vandermonde matrix, multiply by the inverse of its
    /// top `k × k` block. The result's top block is the identity (data
    /// shards pass through) and any `k` rows remain invertible.
    pub fn systematic_vandermonde(n: usize, k: usize) -> Self {
        assert!(n >= k, "need n >= k");
        let v = Matrix::vandermonde(n, k);
        let top = v.submatrix_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.inverted().expect("Vandermonde top block is invertible");
        v.mul(&top_inv)
    }

    /// The systematic MDS encoding matrix for a `(k, n)` code built on a
    /// **Cauchy** base instead of Vandermonde: take the `n × k` Cauchy
    /// matrix (any square submatrix invertible by construction) and
    /// multiply by the inverse of its top `k × k` block. The top block
    /// becomes the identity (data shards pass through) and any `k` of the
    /// `n` rows remain invertible — the classic Cauchy-RS construction,
    /// whose MDS property needs no evaluation-point argument.
    ///
    /// # Panics
    ///
    /// Panics if `n < k` or `n + k > 256`.
    pub fn systematic_cauchy(n: usize, k: usize) -> Self {
        assert!(n >= k, "need n >= k");
        let c = Matrix::cauchy(n, k);
        let top = c.submatrix_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.inverted().expect("Cauchy top block is invertible");
        c.mul(&top_inv)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix mul");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let b = rhs[(l, j)];
                    if b != 0 {
                        out[(i, j)] ^= gf256::mul(a, b);
                    }
                }
            }
        }
        out
    }

    /// Extracts the listed rows into a new matrix (used to build the decode
    /// matrix from the surviving shard rows).
    pub fn submatrix_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "row index out of range");
            let (dst_start, src_start) = (i * self.cols, r * self.cols);
            out.data[dst_start..dst_start + self.cols]
                .copy_from_slice(&self.data[src_start..src_start + self.cols]);
        }
        out
    }

    /// Gauss-Jordan inversion; `None` if singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverted(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a[(r, col)] != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a[(col, col)];
            if p != 1 {
                let pinv = gf256::inv(p);
                a.scale_row(col, pinv);
                inv.scale_row(col, pinv);
            }
            // Eliminate the column from all other rows.
            for r in 0..n {
                if r != col {
                    let f = a[(r, col)];
                    if f != 0 {
                        a.add_scaled_row(col, r, f);
                        inv.add_scaled_row(col, r, f);
                    }
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn scale_row(&mut self, r: usize, c: u8) {
        for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
            *v = gf256::mul(*v, c);
        }
    }

    /// `row[dst] ^= c * row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, c: u8) {
        assert_ne!(src, dst);
        let cols = self.cols;
        let (s, d) = if src < dst {
            let (head, tail) = self.data.split_at_mut(dst * cols);
            (&head[src * cols..(src + 1) * cols], &mut tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(src * cols);
            let d = &mut head[dst * cols..(dst + 1) * cols];
            (&tail[..cols], d)
        };
        // Reuse the shard kernel — rows are just short slices.
        gf256::mul_acc_slice(c, s, d);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = u8;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &u8 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut u8 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:3?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let m = Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let i = Matrix::identity(2);
        assert_eq!(i.mul(&m), m);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Matrix::from_vec(3, 3, vec![1, 2, 3, 4, 5, 6, 7, 8, 10]);
        if let Some(inv) = m.inverted() {
            assert_eq!(m.mul(&inv), Matrix::identity(3));
            assert_eq!(inv.mul(&m), Matrix::identity(3));
        }
        // Cauchy blocks are always invertible — assert the roundtrip there.
        let c = Matrix::cauchy(4, 4);
        let ci = c.inverted().expect("Cauchy is invertible");
        assert_eq!(c.mul(&ci), Matrix::identity(4));
    }

    #[test]
    fn singular_matrix_returns_none() {
        // Two identical rows.
        let m = Matrix::from_vec(2, 2, vec![1, 2, 1, 2]);
        assert!(m.inverted().is_none());
        let z = Matrix::zero(3, 3);
        assert!(z.inverted().is_none());
    }

    #[test]
    fn cauchy_every_square_submatrix_invertible() {
        let c = Matrix::cauchy(6, 4);
        // All 2x2 submatrices from distinct row/col pairs.
        for r1 in 0..6 {
            for r2 in (r1 + 1)..6 {
                for c1 in 0..4 {
                    for c2 in (c1 + 1)..4 {
                        let m = Matrix::from_vec(
                            2,
                            2,
                            vec![c[(r1, c1)], c[(r1, c2)], c[(r2, c1)], c[(r2, c2)]],
                        );
                        assert!(
                            m.inverted().is_some(),
                            "singular 2x2 at rows ({r1},{r2}) cols ({c1},{c2})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn systematic_vandermonde_top_is_identity() {
        let m = Matrix::systematic_vandermonde(14, 10);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(m[(i, j)], u8::from(i == j), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn systematic_vandermonde_any_k_rows_invertible() {
        let n = 8;
        let k = 5;
        let m = Matrix::systematic_vandermonde(n, k);
        // Exhaustively test all C(8,5) = 56 row subsets.
        let rows: Vec<usize> = (0..n).collect();
        let mut combo = vec![0usize; k];
        fn combos(
            rows: &[usize],
            k: usize,
            start: usize,
            combo: &mut Vec<usize>,
            depth: usize,
            m: &Matrix,
            count: &mut usize,
        ) {
            if depth == k {
                let sub = m.submatrix_rows(combo);
                assert!(sub.inverted().is_some(), "rows {combo:?} singular");
                *count += 1;
                return;
            }
            for i in start..rows.len() {
                combo[depth] = rows[i];
                combos(rows, k, i + 1, combo, depth + 1, m, count);
            }
        }
        let mut count = 0;
        combos(&rows, k, 0, &mut combo, 0, &m, &mut count);
        assert_eq!(count, 56);
    }

    #[test]
    fn systematic_cauchy_top_is_identity() {
        let m = Matrix::systematic_cauchy(14, 10);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(m[(i, j)], u8::from(i == j), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn systematic_cauchy_any_k_rows_invertible() {
        let n = 8;
        let k = 5;
        let m = Matrix::systematic_cauchy(n, k);
        let rows: Vec<usize> = (0..n).collect();
        let mut count = 0;
        // All C(8,5) = 56 row subsets, reusing the visitor shape of the
        // Vandermonde twin above.
        fn visit(rows: &[usize], k: usize, start: usize, combo: &mut Vec<usize>, m: &Matrix, count: &mut usize) {
            if combo.len() == k {
                assert!(m.submatrix_rows(combo).inverted().is_some(), "rows {combo:?} singular");
                *count += 1;
                return;
            }
            for i in start..rows.len() {
                combo.push(rows[i]);
                visit(rows, k, i + 1, combo, m, count);
                combo.pop();
            }
        }
        visit(&rows, k, 0, &mut Vec::new(), &m, &mut count);
        assert_eq!(count, 56);
    }

    #[test]
    fn repeated_rows_of_systematic_cauchy_are_singular() {
        // The MDS guarantee covers *distinct* rows only: a decode
        // attempt that presents the same shard twice must hit a
        // singular submatrix, never a silent wrong answer.
        let m = Matrix::systematic_cauchy(6, 3);
        let sub = m.submatrix_rows(&[4, 4, 1]);
        assert!(sub.inverted().is_none());
    }

    #[test]
    fn mul_dimensions() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(3, 4);
        let c = a.mul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 4));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_rejects_bad_dims() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    fn submatrix_rows_picks_rows() {
        let m = Matrix::from_vec(3, 2, vec![1, 2, 3, 4, 5, 6]);
        let s = m.submatrix_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5, 6]);
        assert_eq!(s.row(1), &[1, 2]);
    }

    #[test]
    fn swap_and_scale_row_helpers() {
        let mut m = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3, 4]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[1, 2]);
    }
}

//! Property-based tests of the GF(2⁸)/Reed–Solomon substrate.

use bytes::Bytes;
use proptest::prelude::*;

use spcache_ec::gf256;
use spcache_ec::{
    join_shards, join_shards_bytes, split_into_shards, split_shards_bytes, Matrix, ReedSolomon,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// GF(2⁸) is a field: check the axioms on arbitrary triples.
    #[test]
    fn field_axioms(a: u8, b: u8, c: u8) {
        // Commutativity.
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::add(a, b), gf256::add(b, a));
        // Associativity.
        prop_assert_eq!(
            gf256::mul(gf256::mul(a, b), c),
            gf256::mul(a, gf256::mul(b, c))
        );
        // Distributivity.
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        // Inverses.
        if b != 0 {
            prop_assert_eq!(gf256::mul(gf256::div(a, b), b), a);
        }
    }

    /// The two accumulate kernels agree on arbitrary inputs.
    #[test]
    fn kernels_agree(
        c: u8,
        src in proptest::collection::vec(any::<u8>(), 0..2048),
        init: u8,
    ) {
        let mut a = vec![init; src.len()];
        let mut b = vec![init; src.len()];
        gf256::mul_acc_slice(c, &src, &mut a);
        gf256::mul_acc_slice_nibble(c, &src, &mut b);
        prop_assert_eq!(a, b);
    }

    /// mul_acc is its own inverse (char-2 field): applying twice restores.
    #[test]
    fn mul_acc_self_inverse(
        c: u8,
        src in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let orig: Vec<u8> = (0..src.len()).map(|i| (i % 251) as u8).collect();
        let mut dst = orig.clone();
        gf256::mul_acc_slice(c, &src, &mut dst);
        gf256::mul_acc_slice(c, &src, &mut dst);
        prop_assert_eq!(dst, orig);
    }

    /// Matrix inversion round-trips for random invertible matrices.
    #[test]
    fn matrix_inverse_roundtrip(
        n in 1usize..6,
        seed in proptest::collection::vec(any::<u8>(), 36),
    ) {
        let data: Vec<u8> = seed.into_iter().take(n * n).collect();
        let m = Matrix::from_vec(n, n, data);
        if let Some(inv) = m.inverted() {
            prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
            prop_assert_eq!(inv.mul(&m), Matrix::identity(n));
        }
    }

    /// Systematic encode leaves the data shards verbatim.
    #[test]
    fn encode_is_systematic(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        k in 1usize..6,
        parity in 0usize..4,
    ) {
        let rs = ReedSolomon::new(k, k + parity);
        let shards = rs.encode_bytes(&data);
        let plain = split_into_shards(&data, k);
        prop_assert_eq!(&shards[..k], &plain[..]);
        prop_assert_eq!(rs.verify(&shards).unwrap(), true);
    }

    /// Corrupting any single byte of any shard fails verification
    /// (when parity exists).
    #[test]
    fn verify_detects_any_single_corruption(
        data in proptest::collection::vec(any::<u8>(), 8..512),
        which_shard in 0usize..6,
        which_byte in any::<u16>(),
        flip in 1u8..,
    ) {
        let rs = ReedSolomon::new(4, 6);
        let mut shards = rs.encode_bytes(&data);
        let s = which_shard % shards.len();
        let b = which_byte as usize % shards[s].len();
        shards[s][b] ^= flip;
        prop_assert_eq!(rs.verify(&shards).unwrap(), false);
    }

    /// Reconstruction restores parity shards too, not just data.
    #[test]
    fn reconstruct_restores_everything(
        data in proptest::collection::vec(any::<u8>(), 1..1000),
        drop_a in 0usize..7,
        drop_b in 0usize..7,
    ) {
        let rs = ReedSolomon::new(5, 7);
        let shards = rs.encode_bytes(&data);
        let mut partial: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        partial[drop_a] = None;
        partial[drop_b % 7] = None;
        rs.reconstruct(&mut partial).unwrap();
        for (i, s) in partial.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &shards[i], "shard {}", i);
        }
    }

    /// Cauchy-RS: **any** `k`-of-`k+r` shard subset decodes the file
    /// byte-identically — the late-binding guarantee the integrity tier
    /// leans on when a corrupt partition becomes an erasure.
    #[test]
    fn cauchy_any_k_subset_decodes(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        k in 1usize..6,
        parity in 1usize..4,
        pick_seed: u64,
    ) {
        let n = k + parity;
        let rs = ReedSolomon::new_cauchy(k, n);
        let shards = rs.encode_bytes(&data);
        // Draw a pseudo-random k-subset of the n shards from pick_seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = pick_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut partial: Vec<Option<Vec<u8>>> = vec![None; n];
        for &i in order.iter().take(k) {
            partial[i] = Some(shards[i].clone());
        }
        let rec = rs.reconstruct_data(&mut partial).unwrap();
        prop_assert_eq!(&rec[..data.len()], &data[..]);
        // Every shard (parity included) is restored byte-identically.
        for (i, sh) in partial.iter().enumerate() {
            prop_assert_eq!(sh.as_ref().unwrap(), &shards[i], "shard {}", i);
        }
    }

    /// Cauchy systematic matrices: every k-row submatrix with distinct
    /// rows inverts; any submatrix presenting a row twice is singular —
    /// a duplicated shard can never masquerade as fresh information.
    #[test]
    fn cauchy_submatrix_invertibility(
        k in 2usize..6,
        parity in 1usize..4,
        dup_seed: u64,
    ) {
        let n = k + parity;
        let m = Matrix::systematic_cauchy(n, k);
        // A random distinct k-subset inverts.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = dup_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let rows: Vec<usize> = order.iter().take(k).copied().collect();
        prop_assert!(m.submatrix_rows(&rows).inverted().is_some());
        // Duplicating any one of those rows makes it singular.
        let mut dup = rows.clone();
        dup[0] = dup[1];
        prop_assert!(m.submatrix_rows(&dup).inverted().is_none());
    }

    /// join ∘ split = id even when asked for fewer bytes than stored.
    #[test]
    fn join_respects_length(
        data in proptest::collection::vec(any::<u8>(), 0..1000),
        k in 1usize..12,
        take_frac in 0.0f64..1.0,
    ) {
        let shards = split_into_shards(&data, k);
        let take = (data.len() as f64 * take_frac) as usize;
        let joined = join_shards(&shards, take);
        prop_assert_eq!(&joined[..], &data[..take]);
    }

    /// Zero-copy split: every shard is a view *inside* the original
    /// backing allocation (checked by pointer range), the shard lengths
    /// tile the input exactly, and join restores the bytes — for
    /// arbitrary (ragged) sizes and partition counts, including
    /// `len % k != 0`, `len < k` and `len == 0`.
    #[test]
    fn split_bytes_shares_allocation_and_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        k in 1usize..12,
    ) {
        let backing = Bytes::from(data.clone());
        let base = backing.as_ptr() as usize;
        let limit = base + backing.len();
        let shards = split_shards_bytes(&backing, k);
        prop_assert_eq!(shards.len(), k);
        let mut total = 0usize;
        for shard in &shards {
            total += shard.len();
            if !shard.is_empty() {
                let p = shard.as_ptr() as usize;
                prop_assert!(
                    p >= base && p + shard.len() <= limit,
                    "shard bytes live outside the original allocation \
                     (copied, not sliced)"
                );
            }
        }
        prop_assert_eq!(total, data.len());
        prop_assert_eq!(join_shards_bytes(&shards, data.len()), data);
    }
}

//! Property-based tests of the workload generators.

use proptest::prelude::*;

use rand::SeedableRng;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::arrivals::{merge_arrivals, MmppProcess, PoissonProcess};
use spcache_workload::dist::{exponential, pareto, uniform_usize, Discrete};
use spcache_workload::yahoo;
use spcache_workload::zipf::{zipf_popularities, ZipfSampler};
use spcache_workload::{PopularityModel, StragglerModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zipf popularities are a probability distribution, decreasing in
    /// rank for any exponent.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..5_000, exponent in 0.0f64..3.0) {
        let p = zipf_popularities(n, exponent);
        prop_assert_eq!(p.len(), n);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(p.iter().all(|&x| x > 0.0));
    }

    /// Sampled ranks are always in range; rank 0 is sampled at least as
    /// often as rank n-1 over a long run.
    #[test]
    fn zipf_sampler_in_range(n in 2usize..200, seed: u64) {
        let s = ZipfSampler::new(n, 1.1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut first = 0usize;
        let mut last = 0usize;
        for _ in 0..2_000 {
            let r = s.sample(&mut rng);
            prop_assert!(r < n);
            if r == 0 { first += 1; }
            if r == n - 1 { last += 1; }
        }
        prop_assert!(first >= last, "rank 0 ({first}) must dominate rank n-1 ({last})");
    }

    /// Poisson arrivals are strictly increasing and positive.
    #[test]
    fn poisson_strictly_increasing(rate in 0.1f64..100.0, seed: u64) {
        let rng = Xoshiro256StarStar::seed_from_u64(seed);
        let times: Vec<f64> = PoissonProcess::new(rate, rng).take(200).collect();
        prop_assert!(times[0] > 0.0);
        prop_assert!(times.windows(2).all(|w| w[1] > w[0]));
    }

    /// MMPP arrivals are increasing and roughly hit the configured
    /// average rate.
    #[test]
    fn mmpp_rate_sane(avg in 1.0f64..20.0, burst in 1.5f64..20.0, seed: u64) {
        let rng = Xoshiro256StarStar::seed_from_u64(seed);
        let m = MmppProcess::bursty(avg, burst, rng);
        let expect = m.average_rate();
        prop_assert!((expect - avg).abs() / avg < 1e-9, "constructor must hit the average");
        // Long window: the n/T estimator needs many calm/burst cycles
        // before it concentrates (bursts hold ~80% of events).
        let times: Vec<f64> = m.take(30_000).collect();
        prop_assert!(times.windows(2).all(|w| w[1] > w[0]));
        let empirical = times.len() as f64 / times.last().unwrap();
        prop_assert!((empirical - avg).abs() / avg < 0.5, "rate {empirical} vs {avg}");
    }

    /// merge_arrivals produces a time-ordered tagged stream containing
    /// every input event exactly once.
    #[test]
    fn merge_is_order_preserving(
        streams in proptest::collection::vec(
            proptest::collection::vec(0.0f64..100.0, 0..30),
            0..5,
        ),
    ) {
        let sorted: Vec<Vec<f64>> = streams
            .into_iter()
            .map(|mut s| {
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                s
            })
            .collect();
        let total: usize = sorted.iter().map(Vec::len).sum();
        let merged = merge_arrivals(sorted.clone());
        prop_assert_eq!(merged.len(), total);
        prop_assert!(merged.windows(2).all(|w| w[0].0 <= w[1].0));
        for (t, src) in &merged {
            prop_assert!(sorted[*src].contains(t));
        }
    }

    /// Samplers never leave their supports.
    #[test]
    fn dist_supports(seed: u64, rate in 0.01f64..100.0, xmin in 0.1f64..10.0) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(exponential(&mut rng, rate) > 0.0);
            prop_assert!(pareto(&mut rng, xmin, 1.2) >= xmin);
            prop_assert!(uniform_usize(&mut rng, 17) < 17);
        }
    }

    /// Discrete distributions sample only their support values and mean()
    /// lies within [min, max].
    #[test]
    fn discrete_support_and_mean(
        pairs in proptest::collection::vec((0.0f64..100.0, 0.01f64..10.0), 1..10),
        seed: u64,
    ) {
        let d = Discrete::new(&pairs);
        let values: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(values.contains(&x));
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(d.mean() >= lo - 1e-9 && d.mean() <= hi + 1e-9);
    }

    /// Straggler E[max-of-k] is monotone in both k and p, bounded by the
    /// profile's extremes.
    #[test]
    fn straggler_max_factor_monotone(p1 in 0.0f64..0.5, dp in 0.0f64..0.5, k in 1usize..40) {
        let a = StragglerModel::bing(p1);
        let b = StragglerModel::bing((p1 + dp).min(1.0));
        prop_assert!(b.expected_max_factor(k) >= a.expected_max_factor(k) - 1e-12);
        prop_assert!(a.expected_max_factor(k + 1) >= a.expected_max_factor(k) - 1e-12);
        prop_assert!(a.expected_max_factor(k) >= 1.0);
        prop_assert!(a.expected_max_factor(k) <= 10.0);
    }

    /// Popularity shifts permute (never change) the rank multiset, and a
    /// rank permutation is a bijection.
    #[test]
    fn shift_is_a_permutation(n in 2usize..300, seed: u64) {
        let mut m = PopularityModel::zipf(n, 1.1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        m.shift(&mut rng);
        let mut ranks: Vec<usize> = (0..n).map(|i| m.rank(i)).collect();
        ranks.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        prop_assert_eq!(ranks, expect);
        prop_assert!((m.popularities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Yahoo populations always have positive sizes and non-negative
    /// counts; trace files are sorted descending.
    #[test]
    fn yahoo_population_sane(n in 1usize..2_000, seed: u64) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let files = yahoo::generate_files(n, &mut rng);
        prop_assert_eq!(files.len(), n);
        prop_assert!(files.iter().all(|f| f.size_bytes > 0.0));
        let sizes = yahoo::generate_trace_files(n, &mut rng);
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }
}

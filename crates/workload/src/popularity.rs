//! File popularity assignment and the popularity-shift generator.
//!
//! The repartition experiments (§7.4) shift popularity by "randomly
//! shuffling the popularity ranks of all files (under the same Zipf
//! distribution)" — deliberately more drastic than real clusters, where
//! ~40% of files stay hot across days.

use rand::Rng;

use crate::dist::uniform_usize;
use crate::zipf::zipf_popularities;

/// A popularity assignment: which file holds which Zipf rank.
///
/// `popularity(i)` is the access probability of file `i`; internally the
/// model stores a permutation `rank_of[i]` into a fixed Zipf table, so a
/// *shift* is just a re-shuffle of the permutation.
#[derive(Debug, Clone)]
pub struct PopularityModel {
    /// Zipf probabilities by rank (rank 0 hottest).
    by_rank: Vec<f64>,
    /// rank_of[file] = rank currently held by that file.
    rank_of: Vec<usize>,
}

impl PopularityModel {
    /// `n` files with Zipf(`exponent`) popularity; file `i` initially holds
    /// rank `i` (file 0 is the hottest).
    pub fn zipf(n: usize, exponent: f64) -> Self {
        PopularityModel {
            by_rank: zipf_popularities(n, exponent),
            rank_of: (0..n).collect(),
        }
    }

    /// Builds from explicit per-rank probabilities (normalized by caller
    /// or not — queries renormalize nothing, so pass a distribution).
    pub fn from_rank_probabilities(by_rank: Vec<f64>) -> Self {
        assert!(!by_rank.is_empty());
        let n = by_rank.len();
        PopularityModel {
            by_rank,
            rank_of: (0..n).collect(),
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// Whether the model is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// Access probability of file `i`.
    pub fn popularity(&self, i: usize) -> f64 {
        self.by_rank[self.rank_of[i]]
    }

    /// Current rank held by file `i` (0 = hottest).
    pub fn rank(&self, i: usize) -> usize {
        self.rank_of[i]
    }

    /// The full per-file popularity vector.
    pub fn popularities(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.popularity(i)).collect()
    }

    /// Per-file request rates given an aggregate rate `lambda` (req/s):
    /// `λ_i = P_i · Λ` (paper Eq. 4 inverted).
    pub fn request_rates(&self, lambda: f64) -> Vec<f64> {
        assert!(lambda >= 0.0);
        (0..self.len())
            .map(|i| self.popularity(i) * lambda)
            .collect()
    }

    /// Randomly shuffles which file holds which rank — the §7.4
    /// popularity shift (Fisher–Yates).
    pub fn shift<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.rank_of.len();
        for i in (1..n).rev() {
            let j = uniform_usize(rng, i + 1);
            self.rank_of.swap(i, j);
        }
    }

    /// Fraction of files whose rank changed between `self` and `other`
    /// (useful to sanity-check shift drasticness).
    pub fn rank_change_fraction(&self, other: &PopularityModel) -> f64 {
        assert_eq!(self.len(), other.len());
        let changed = self
            .rank_of
            .iter()
            .zip(&other.rank_of)
            .filter(|(a, b)| a != b)
            .count();
        changed as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;

    #[test]
    fn initial_assignment_is_identity() {
        let m = PopularityModel::zipf(10, 1.1);
        for i in 0..10 {
            assert_eq!(m.rank(i), i);
        }
        assert!(m.popularity(0) > m.popularity(9));
    }

    #[test]
    fn popularities_sum_to_one() {
        let m = PopularityModel::zipf(100, 1.05);
        assert!((m.popularities().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn request_rates_scale_with_lambda() {
        let m = PopularityModel::zipf(10, 1.0);
        let rates = m.request_rates(8.0);
        assert!((rates.iter().sum::<f64>() - 8.0).abs() < 1e-9);
        assert!(rates[0] > rates[9]);
    }

    #[test]
    fn shift_preserves_distribution() {
        let mut m = PopularityModel::zipf(50, 1.1);
        let before: f64 = m.popularities().iter().sum();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        m.shift(&mut rng);
        let after: f64 = m.popularities().iter().sum();
        assert!((before - after).abs() < 1e-9);
        // Same multiset of probabilities.
        let mut a = m.popularities();
        let mut b = PopularityModel::zipf(50, 1.1).popularities();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_actually_shuffles() {
        let original = PopularityModel::zipf(200, 1.1);
        let mut shifted = original.clone();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        shifted.shift(&mut rng);
        // With 200 files, essentially all ranks should move.
        assert!(original.rank_change_fraction(&shifted) > 0.9);
    }

    #[test]
    fn shift_is_deterministic_per_seed() {
        let mut a = PopularityModel::zipf(30, 1.1);
        let mut b = PopularityModel::zipf(30, 1.1);
        let mut ra = Xoshiro256StarStar::seed_from_u64(3);
        let mut rb = Xoshiro256StarStar::seed_from_u64(3);
        a.shift(&mut ra);
        b.shift(&mut rb);
        assert_eq!(a.rank_change_fraction(&b), 0.0);
    }

    #[test]
    fn from_explicit_probabilities() {
        let m = PopularityModel::from_rank_probabilities(vec![0.7, 0.2, 0.1]);
        assert_eq!(m.popularity(0), 0.7);
        assert_eq!(m.len(), 3);
    }
}

//! Plain-text workload specifications — bring your own trace.
//!
//! The experiments in this repository synthesize workloads, but a
//! downstream user will want to replay a real trace. [`WorkloadSpec`] is
//! a minimal, dependency-free text format for that:
//!
//! ```text
//! # spcache workload v1
//! file <size_bytes> <popularity>
//! file <size_bytes> <popularity>
//! ...
//! req <time_secs> <file_index>
//! req <time_secs> <file_index>
//! ...
//! ```
//!
//! Lines starting with `#` are comments; popularities are normalized on
//! load; request times must be non-decreasing and file indices in range.

use std::fmt::Write as _;

/// One file's static description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileSpec {
    /// Size in bytes.
    pub size_bytes: f64,
    /// Relative popularity weight (normalized on load).
    pub popularity: f64,
}

/// A parsed workload: files plus a time-ordered request trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadSpec {
    /// File table.
    pub files: Vec<FileSpec>,
    /// `(arrival time, file index)` pairs, non-decreasing in time.
    pub requests: Vec<(f64, usize)>,
}

/// Errors from parsing a workload spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line had the wrong shape; carries the 1-based line number.
    Malformed(usize),
    /// A request referenced a file index out of range.
    BadFileIndex(usize),
    /// Request times went backwards.
    OutOfOrder(usize),
    /// No files were declared.
    NoFiles,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Malformed(line) => write!(f, "malformed line {line}"),
            SpecError::BadFileIndex(line) => write!(f, "bad file index at line {line}"),
            SpecError::OutOfOrder(line) => write!(f, "requests out of order at line {line}"),
            SpecError::NoFiles => write!(f, "spec declares no files"),
        }
    }
}

impl std::error::Error for SpecError {}

impl WorkloadSpec {
    /// Parses the text format described in the module docs.
    ///
    /// # Errors
    ///
    /// Reports the first malformed line, bad index, time inversion, or an
    /// empty file table.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = WorkloadSpec::default();
        let mut last_t = f64::NEG_INFINITY;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("file") => {
                    let size: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(SpecError::Malformed(lineno))?;
                    let pop: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(SpecError::Malformed(lineno))?;
                    if size <= 0.0 || pop < 0.0 || parts.next().is_some() {
                        return Err(SpecError::Malformed(lineno));
                    }
                    spec.files.push(FileSpec {
                        size_bytes: size,
                        popularity: pop,
                    });
                }
                Some("req") => {
                    let t: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(SpecError::Malformed(lineno))?;
                    let file: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or(SpecError::Malformed(lineno))?;
                    if parts.next().is_some() || !t.is_finite() {
                        return Err(SpecError::Malformed(lineno));
                    }
                    if file >= spec.files.len() {
                        return Err(SpecError::BadFileIndex(lineno));
                    }
                    if t < last_t {
                        return Err(SpecError::OutOfOrder(lineno));
                    }
                    last_t = t;
                    spec.requests.push((t, file));
                }
                _ => return Err(SpecError::Malformed(lineno)),
            }
        }
        if spec.files.is_empty() {
            return Err(SpecError::NoFiles);
        }
        Ok(spec)
    }

    /// Emits the text format (round-trips through [`WorkloadSpec::parse`]).
    pub fn emit(&self) -> String {
        let mut out = String::from("# spcache workload v1\n");
        for f in &self.files {
            writeln!(out, "file {} {}", f.size_bytes, f.popularity).expect("string write");
        }
        for &(t, file) in &self.requests {
            writeln!(out, "req {t} {file}").expect("string write");
        }
        out
    }

    /// The popularity vector, normalized to sum to 1 (uniform if all
    /// weights are zero).
    pub fn normalized_popularities(&self) -> Vec<f64> {
        let total: f64 = self.files.iter().map(|f| f.popularity).sum();
        if total <= 0.0 {
            return vec![1.0 / self.files.len() as f64; self.files.len()];
        }
        self.files.iter().map(|f| f.popularity / total).collect()
    }

    /// File sizes in declaration order.
    pub fn sizes(&self) -> Vec<f64> {
        self.files.iter().map(|f| f.size_bytes).collect()
    }

    /// Empirical aggregate request rate of the trace (0 when degenerate).
    pub fn trace_rate(&self) -> f64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(&(t0, _)), Some(&(t1, _))) if t1 > t0 => {
                self.requests.len() as f64 / (t1 - t0)
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# spcache workload v1
file 1000000 0.6
file 2000000 0.4

req 0.0 0
req 0.5 1
req 1.25 0
";

    #[test]
    fn parses_the_sample() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.files.len(), 2);
        assert_eq!(spec.requests.len(), 3);
        assert_eq!(spec.requests[1], (0.5, 1));
        assert_eq!(spec.sizes(), vec![1e6, 2e6]);
        let p = spec.normalized_popularities();
        assert!((p[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn emit_parse_roundtrip() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        let again = WorkloadSpec::parse(&spec.emit()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn trace_rate() {
        let spec = WorkloadSpec::parse(SAMPLE).unwrap();
        assert!((spec.trace_rate() - 3.0 / 1.25).abs() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = WorkloadSpec::parse("# x\n\nfile 10 1\n# y\nreq 0 0\n").unwrap();
        assert_eq!(spec.files.len(), 1);
        assert_eq!(spec.requests.len(), 1);
    }

    #[test]
    fn malformed_lines_report_position() {
        assert_eq!(
            WorkloadSpec::parse("file 10\n"),
            Err(SpecError::Malformed(1))
        );
        assert_eq!(
            WorkloadSpec::parse("file 10 1\nbogus\n"),
            Err(SpecError::Malformed(2))
        );
        assert_eq!(
            WorkloadSpec::parse("file 10 1 extra\n"),
            Err(SpecError::Malformed(1))
        );
    }

    #[test]
    fn bad_index_and_order_detected() {
        assert_eq!(
            WorkloadSpec::parse("file 10 1\nreq 0 5\n"),
            Err(SpecError::BadFileIndex(2))
        );
        assert_eq!(
            WorkloadSpec::parse("file 10 1\nreq 1 0\nreq 0.5 0\n"),
            Err(SpecError::OutOfOrder(3))
        );
    }

    #[test]
    fn empty_spec_rejected() {
        assert_eq!(WorkloadSpec::parse("# nothing\n"), Err(SpecError::NoFiles));
        assert_eq!(
            WorkloadSpec::parse("file 0 1\n"),
            Err(SpecError::Malformed(1))
        );
    }

    #[test]
    fn zero_popularity_falls_back_to_uniform() {
        let spec = WorkloadSpec::parse("file 10 0\nfile 20 0\n").unwrap();
        assert_eq!(spec.normalized_popularities(), vec![0.5, 0.5]);
    }
}

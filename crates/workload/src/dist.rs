//! Elementary random samplers built directly on [`rand::Rng`].
//!
//! Only the distributions the paper's workloads need are implemented, from
//! first principles (inverse-CDF or Box–Muller), so the only external
//! dependency is a uniform bit source.

use rand::Rng;

/// Draws a uniform `f64` in `[0, 1)` from any `Rng` using the top 53 bits.
#[inline]
pub fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[lo, hi)`.
#[inline]
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(hi >= lo);
    lo + unit_f64(rng) * (hi - lo)
}

/// Uniform integer in `[0, n)` via rejection-free multiply-shift (bias is
/// negligible for n ≪ 2⁶⁴; adequate for workload sampling).
#[inline]
pub fn uniform_usize<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as usize
}

/// Bernoulli trial with success probability `p`.
#[inline]
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    unit_f64(rng) < p
}

/// Exponential with the given `rate` (mean `1/rate`), by inverse CDF.
///
/// The paper models partition transfer delays as exponential with mean
/// `S_i / (k_i · B_s)` (Section 5.3).
#[inline]
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    // 1 - U in (0, 1] avoids ln(0).
    -(1.0 - unit_f64(rng)).ln() / rate
}

/// Standard normal via Box–Muller (one value; the pair's second half is
/// discarded for simplicity — workload generation is not the hot path).
#[inline]
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = (1.0 - unit_f64(rng)).max(f64::MIN_POSITIVE);
    let u2 = unit_f64(rng);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal with location `mu` and scale `sigma` (of the underlying
/// normal). Used for file-size synthesis.
#[inline]
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * std_normal(rng)).exp()
}

/// Pareto with scale `x_min` and shape `alpha` (heavy tail for straggler
/// slowdowns and file sizes).
#[inline]
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    debug_assert!(x_min > 0.0 && alpha > 0.0);
    x_min / (1.0 - unit_f64(rng)).powf(1.0 / alpha)
}

/// A discrete distribution over `values` with the given `weights`,
/// sampled by linear CDF walk (small supports only).
#[derive(Debug, Clone)]
pub struct Discrete {
    values: Vec<f64>,
    cdf: Vec<f64>,
}

impl Discrete {
    /// Builds from `(value, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty or weights are non-positive.
    pub fn new(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "discrete distribution needs support");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut cdf = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for &(_, w) in pairs {
            assert!(w >= 0.0, "negative weight");
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against rounding: the last entry must reach 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Discrete {
            values: pairs.iter().map(|&(v, _)| v).collect(),
            cdf,
        }
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit_f64(rng);
        let idx = self
            .cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1);
        self.values[idx]
    }

    /// The `(value, probability)` support of the distribution, in
    /// construction order.
    pub fn support(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let mut prev = 0.0;
        self.values.iter().zip(&self.cdf).map(move |(&v, &c)| {
            let p = c - prev;
            prev = c;
            (v, p)
        })
    }

    /// The expectation of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (v, &c) in self.values.iter().zip(&self.cdf) {
            mean += v * (c - prev);
            prev = c;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(1234)
    }

    #[test]
    fn unit_f64_bounds_and_mean() {
        let mut r = rng();
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x = unit_f64(&mut r);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 20_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn uniform_usize_covers_range() {
        let mut r = rng();
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[uniform_usize(&mut r, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let rate = 4.0;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exponential(&mut r, 0.1) > 0.0);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let hits = (0..100_000).filter(|_| bernoulli(&mut r, 0.05)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.05).abs() < 0.005, "freq {f}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| std_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001).map(|_| log_normal(&mut r, 2.0, 0.5)).collect();
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[10_000];
        // Median of LogNormal(mu, sigma) is e^mu.
        assert!((median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.05);
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| pareto(&mut r, 1.0, 1.16)).collect();
        let max = xs.iter().cloned().fold(0.0, f64::max);
        // With alpha close to 1 the max should be far above the median.
        assert!(max > 100.0, "max {max}");
    }

    #[test]
    fn discrete_sampling_matches_weights() {
        let d = Discrete::new(&[(1.0, 1.0), (2.0, 2.0), (3.0, 1.0)]);
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            let v = d.sample(&mut r);
            counts[v as usize - 1] += 1;
        }
        let f1 = counts[0] as f64 / 40_000.0;
        let f2 = counts[1] as f64 / 40_000.0;
        assert!((f1 - 0.25).abs() < 0.01);
        assert!((f2 - 0.5).abs() < 0.01);
    }

    #[test]
    fn discrete_mean() {
        let d = Discrete::new(&[(2.0, 1.0), (4.0, 1.0)]);
        assert!((d.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "needs support")]
    fn discrete_rejects_empty() {
        let _ = Discrete::new(&[]);
    }
}

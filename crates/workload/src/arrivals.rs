//! Request arrival processes.
//!
//! The paper's EC2 experiments use independent Poisson clients
//! ([`PoissonProcess`]); the trace-driven simulation (§7.7) replays the
//! Google cluster job-submission sequence, which is *bursty*, not Poisson.
//! [`MmppProcess`] — a two-state Markov-modulated Poisson process — is the
//! standard synthetic stand-in for such burstiness: a "calm" state with a
//! low rate and a "burst" state with a high rate, with exponential
//! sojourns.

use rand::Rng;

use crate::dist::{bernoulli, exponential};

/// An open-loop Poisson arrival process with the given rate (events/s).
///
/// Implemented as an iterator over absolute arrival times.
///
/// # Examples
///
/// ```
/// use spcache_workload::PoissonProcess;
/// use rand::SeedableRng;
/// use spcache_sim::Xoshiro256StarStar;
///
/// let rng = Xoshiro256StarStar::seed_from_u64(1);
/// let arrivals: Vec<f64> = PoissonProcess::new(10.0, rng).take(100).collect();
/// assert_eq!(arrivals.len(), 100);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess<R> {
    rate: f64,
    now: f64,
    rng: R,
}

impl<R: Rng> PoissonProcess<R> {
    /// Creates a process with `rate` arrivals per second starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64, rng: R) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        PoissonProcess {
            rate,
            now: 0.0,
            rng,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl<R: Rng> Iterator for PoissonProcess<R> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.now += exponential(&mut self.rng, self.rate);
        Some(self.now)
    }
}

/// A two-state Markov-modulated Poisson process.
///
/// State 0 ("calm") emits at `rate_calm`, state 1 ("burst") at
/// `rate_burst`; the process flips state after exponential sojourns with
/// means `mean_calm` and `mean_burst` seconds. Long-run average rate is the
/// sojourn-weighted mean of the two rates.
#[derive(Debug, Clone)]
pub struct MmppProcess<R> {
    rate_calm: f64,
    rate_burst: f64,
    mean_calm: f64,
    mean_burst: f64,
    now: f64,
    state_burst: bool,
    state_ends: f64,
    rng: R,
}

impl<R: Rng> MmppProcess<R> {
    /// Creates the process; starts in the calm state at t = 0.
    ///
    /// # Panics
    ///
    /// Panics unless all rates and sojourn means are positive.
    pub fn new(rate_calm: f64, rate_burst: f64, mean_calm: f64, mean_burst: f64, mut rng: R) -> Self {
        assert!(rate_calm > 0.0 && rate_burst > 0.0, "rates must be positive");
        assert!(
            mean_calm > 0.0 && mean_burst > 0.0,
            "sojourn means must be positive"
        );
        let first_sojourn = exponential(&mut rng, 1.0 / mean_calm);
        MmppProcess {
            rate_calm,
            rate_burst,
            mean_calm,
            mean_burst,
            now: 0.0,
            state_burst: false,
            state_ends: first_sojourn,
            rng,
        }
    }

    /// A convenience constructor roughly calibrated to the Google-trace
    /// burstiness used in §7.7: bursts run at `burstiness ×` the base rate
    /// and cover ~20% of time, keeping the requested long-run average.
    ///
    /// # Panics
    ///
    /// Panics unless `avg_rate > 0` and `burstiness > 1`.
    pub fn bursty(avg_rate: f64, burstiness: f64, rng: R) -> Self {
        assert!(avg_rate > 0.0, "rate must be positive");
        assert!(burstiness > 1.0, "burstiness must exceed 1");
        // Fraction of time in burst state.
        let f = 0.2;
        // Solve rate_calm so that (1-f)*rc + f*rb = avg with rb = burstiness*rc.
        let rc = avg_rate / ((1.0 - f) + f * burstiness);
        let rb = burstiness * rc;
        MmppProcess::new(rc, rb, 8.0, 2.0, rng)
    }

    /// Long-run average rate implied by the configuration.
    pub fn average_rate(&self) -> f64 {
        let total = self.mean_calm + self.mean_burst;
        (self.rate_calm * self.mean_calm + self.rate_burst * self.mean_burst) / total
    }

    fn current_rate(&self) -> f64 {
        if self.state_burst {
            self.rate_burst
        } else {
            self.rate_calm
        }
    }
}

impl<R: Rng> Iterator for MmppProcess<R> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        loop {
            let rate = self.current_rate();
            let gap = exponential(&mut self.rng, rate);
            let candidate = self.now + gap;
            if candidate <= self.state_ends {
                self.now = candidate;
                return Some(candidate);
            }
            // Cross into the next state: discard the candidate (memoryless)
            // and restart the clock at the state boundary.
            self.now = self.state_ends;
            self.state_burst = !self.state_burst;
            let mean = if self.state_burst {
                self.mean_burst
            } else {
                self.mean_calm
            };
            self.state_ends = self.now + exponential(&mut self.rng, 1.0 / mean);
        }
    }
}

/// Merges several arrival streams (e.g. 20 independent Poisson clients)
/// into one globally time-ordered stream tagged with the source index.
pub fn merge_arrivals(streams: Vec<Vec<f64>>) -> Vec<(f64, usize)> {
    let mut all: Vec<(f64, usize)> = streams
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.iter().map(move |&t| (t, i)))
        .collect();
    all.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN times"));
    all
}

/// Thinning helper: keeps each arrival independently with probability `p`
/// (used to subsample traces).
pub fn thin<R: Rng>(arrivals: &[f64], p: f64, rng: &mut R) -> Vec<f64> {
    arrivals
        .iter()
        .copied()
        .filter(|_| bernoulli(rng, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut p = PoissonProcess::new(5.0, rng(1));
        let mut last = 0.0;
        let n = 50_000;
        for _ in 0..n {
            last = p.next().unwrap();
        }
        let empirical = n as f64 / last;
        assert!((empirical - 5.0).abs() < 0.1, "rate {empirical}");
    }

    #[test]
    fn poisson_interarrivals_memoryless() {
        // CV of exponential inter-arrivals is 1.
        let mut p = PoissonProcess::new(2.0, rng(2));
        let times: Vec<f64> = (&mut p).take(20_000).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn mmpp_average_rate() {
        let m = MmppProcess::new(1.0, 10.0, 8.0, 2.0, rng(3));
        let expect = m.average_rate();
        let times: Vec<f64> = m.take(100_000).collect();
        let empirical = times.len() as f64 / times.last().unwrap();
        assert!(
            (empirical - expect).abs() / expect < 0.1,
            "empirical {empirical} vs {expect}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Inter-arrival CV > 1 distinguishes MMPP from Poisson.
        let m = MmppProcess::bursty(5.0, 10.0, rng(4));
        let times: Vec<f64> = m.take(50_000).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.1, "MMPP cv {cv} should exceed Poisson's 1.0");
    }

    #[test]
    fn mmpp_times_strictly_increase() {
        let m = MmppProcess::bursty(3.0, 8.0, rng(5));
        let times: Vec<f64> = m.take(10_000).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn merge_orders_and_tags() {
        let merged = merge_arrivals(vec![vec![1.0, 3.0], vec![2.0]]);
        assert_eq!(merged, vec![(1.0, 0), (2.0, 1), (3.0, 0)]);
    }

    #[test]
    fn thinning_preserves_rate_fraction() {
        let mut r = rng(6);
        let arrivals: Vec<f64> = PoissonProcess::new(10.0, rng(7)).take(50_000).collect();
        let kept = thin(&arrivals, 0.3, &mut r);
        let frac = kept.len() as f64 / arrivals.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "kept fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn poisson_rejects_zero_rate() {
        let _ = PoissonProcess::new(0.0, rng(8));
    }
}

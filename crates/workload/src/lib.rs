#![warn(missing_docs)]

//! Workload generation for the SP-Cache experiments.
//!
//! The paper's evaluation drives the cache cluster with:
//!
//! * **Zipf file popularity** (exponent 1.05–1.1) — [`zipf`],
//! * **Poisson read arrivals** per client, and a bursty non-Poisson
//!   process standing in for the Google-trace job-submission sequence —
//!   [`arrivals`],
//! * **Yahoo!-like file populations** (78% cold files accessed < 10 times,
//!   2% hot ≥ 100, hot files 15–30× larger; Fig. 1) — [`yahoo`],
//! * **Injected stragglers** following the Microsoft Bing profile
//!   (5% probability, heavy-tailed slowdown) — [`stragglers`],
//! * elementary samplers (exponential, log-normal, Pareto, discrete) built
//!   directly on `rand::Rng` — [`dist`],
//! * popularity assignment and the rank-shuffle *popularity shift* used in
//!   the repartition experiments — [`popularity`].

pub mod arrivals;
pub mod dist;
pub mod popularity;
pub mod spec;
pub mod stragglers;
pub mod yahoo;
pub mod zipf;

pub use arrivals::{MmppProcess, PoissonProcess};
pub use popularity::PopularityModel;
pub use stragglers::StragglerModel;
pub use zipf::{zipf_popularities, ZipfSampler};

//! Synthetic Yahoo!-trace file populations.
//!
//! The paper's Fig. 1 summarizes two months of accesses to 40 M files in a
//! Yahoo! cluster:
//!
//! * ~78% of files are *cold* (fewer than 10 accesses),
//! * only ~2% are *hot* (≥ 100 accesses),
//! * hot files are 15–30× larger than cold ones (hundreds of MB vs ~10 MB).
//!
//! The real Webscope trace is not redistributable, so this module
//! synthesizes populations matching those marginals: access counts follow
//! a discrete Pareto-like tail calibrated to the cold/hot fractions, and
//! sizes are log-normal with a popularity-dependent scale. The trace-driven
//! simulation (§7.7) additionally assumes "a larger file is more popular",
//! which [`generate_trace_files`] enforces by sorting.

use rand::Rng;

use crate::dist::{log_normal, pareto, unit_f64};

/// One file in a synthetic Yahoo-like population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceFile {
    /// Total access count over the trace window.
    pub access_count: u64,
    /// File size in bytes.
    pub size_bytes: f64,
}

/// Access-count buckets used by Fig. 1's x-axis.
pub const COUNT_BUCKETS: &[(u64, u64)] = &[
    (0, 10),
    (10, 100),
    (100, 1_000),
    (1_000, u64::MAX),
];

/// Generates `n` files with Yahoo-like access-count and size marginals.
///
/// Access counts: `floor(Pareto(x_min = 1, α = 1.18)) − 1`, which yields
/// ≈ 78% of draws below 10 and ≈ 2% at or above 100 — matching Fig. 1.
/// Sizes: log-normal around 10 MB for cold files, scaled up continuously
/// with log₁₀(count) so hot files land 15–30× larger.
pub fn generate_files<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<TraceFile> {
    assert!(n > 0);
    (0..n)
        .map(|_| {
            let access_count = sample_access_count(rng);
            let size_bytes = sample_size(access_count, rng);
            TraceFile {
                access_count,
                size_bytes,
            }
        })
        .collect()
}

/// Draws one access count from the calibrated heavy-tailed distribution:
///
/// * with probability 0.78 — cold, uniform in `0..10`,
/// * otherwise — `Pareto(x_min = 10, α = 1.04)`, giving
///   `P(count ≥ 100) = 0.22 · 10^(−1.04) ≈ 0.02` as in Fig. 1.
pub fn sample_access_count<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    if unit_f64(rng) < 0.78 {
        (unit_f64(rng) * 10.0) as u64
    } else {
        pareto(rng, 10.0, 1.04).min(1e7) as u64
    }
}

/// Size model: cold ≈ 10 MB log-normal; the multiplier ramps from 1× below
/// 10 accesses to 25× at ≥ 1000 accesses, reproducing the 15–30× hot/cold
/// size ratio of Fig. 1.
pub fn sample_size<R: Rng + ?Sized>(access_count: u64, rng: &mut R) -> f64 {
    let base = log_normal(rng, (10.0f64 * 1e6).ln(), 0.6);
    // log10(count) mapped so <10 → 0, 1000 → 1.
    let heat = (((access_count as f64 + 1.0).log10() - 1.0) / 1.5).clamp(0.0, 1.0);
    let multiplier = 1.0 + 24.0 * heat; // 1x (cold) .. 25x (hot)
    base * multiplier
}

/// Summary of a population, matching Fig. 1's two series.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Fraction of files in each [`COUNT_BUCKETS`] bucket.
    pub count_fractions: Vec<f64>,
    /// Mean file size (bytes) in each bucket.
    pub mean_sizes: Vec<f64>,
}

/// Computes Fig. 1's statistics for a population.
pub fn stats(files: &[TraceFile]) -> TraceStats {
    let mut count_fractions = Vec::with_capacity(COUNT_BUCKETS.len());
    let mut mean_sizes = Vec::with_capacity(COUNT_BUCKETS.len());
    for &(lo, hi) in COUNT_BUCKETS {
        let bucket: Vec<&TraceFile> = files
            .iter()
            .filter(|f| f.access_count >= lo && f.access_count < hi)
            .collect();
        count_fractions.push(bucket.len() as f64 / files.len() as f64);
        mean_sizes.push(if bucket.is_empty() {
            0.0
        } else {
            bucket.iter().map(|f| f.size_bytes).sum::<f64>() / bucket.len() as f64
        });
    }
    TraceStats {
        count_fractions,
        mean_sizes,
    }
}

/// Generates the §7.7 trace-simulation population: `n` files with Yahoo
/// sizes where **popularity rank follows size** (largest file = rank 0,
/// i.e. most popular), returning sizes ordered by popularity rank.
pub fn generate_trace_files<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let mut sizes: Vec<f64> = generate_files(n, rng)
        .into_iter()
        .map(|f| f.size_bytes)
        .collect();
    // Most popular = largest (paper: "a larger file is more popular").
    sizes.sort_unstable_by(|a, b| b.partial_cmp(a).expect("no NaN sizes"));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn cold_and_hot_fractions_match_fig1() {
        let mut r = rng(1);
        let files = generate_files(100_000, &mut r);
        let s = stats(&files);
        let cold = s.count_fractions[0];
        let hot: f64 = s.count_fractions[2] + s.count_fractions[3];
        assert!(
            (0.70..=0.85).contains(&cold),
            "cold fraction {cold} out of Fig.1 band"
        );
        assert!(
            (0.01..=0.05).contains(&hot),
            "hot fraction {hot} out of Fig.1 band"
        );
    }

    #[test]
    fn hot_files_are_much_larger() {
        let mut r = rng(2);
        let files = generate_files(100_000, &mut r);
        let s = stats(&files);
        let cold_size = s.mean_sizes[0];
        let hot_size = s.mean_sizes[2];
        let ratio = hot_size / cold_size;
        assert!(
            (5.0..=40.0).contains(&ratio),
            "hot/cold size ratio {ratio} outside the paper's 15-30x band (with slack)"
        );
    }

    #[test]
    fn sizes_are_positive_and_plausible() {
        let mut r = rng(3);
        for f in generate_files(10_000, &mut r) {
            assert!(f.size_bytes > 0.0);
            assert!(f.size_bytes < 1e12, "size {} implausible", f.size_bytes);
        }
    }

    #[test]
    fn stats_fractions_sum_to_one() {
        let mut r = rng(4);
        let files = generate_files(5_000, &mut r);
        let s = stats(&files);
        assert!((s.count_fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_files_sorted_descending() {
        let mut r = rng(5);
        let sizes = generate_trace_files(3_000, &mut r);
        assert_eq!(sizes.len(), 3_000);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_files(100, &mut rng(6));
        let b = generate_files(100, &mut rng(6));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_bucket_mean_size_is_zero() {
        // A tiny all-cold population: hot buckets must report 0 mean size.
        let files = vec![
            TraceFile {
                access_count: 1,
                size_bytes: 1e6,
            };
            10
        ];
        let s = stats(&files);
        assert_eq!(s.mean_sizes[2], 0.0);
        assert_eq!(s.mean_sizes[3], 0.0);
    }
}

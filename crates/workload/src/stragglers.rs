//! Straggler injection model.
//!
//! §4.2 / §7.5 of the paper inject stragglers by slowing each partition
//! read with probability 0.05, with a delay factor "randomly drawn from
//! the distribution profiled in the Microsoft Bing cluster trace"
//! (Mantri, OSDI'10). Mantri reports a heavy-tailed slowdown: most
//! stragglers are 1.2–2× slower, with a tail out to ~10×. We encode that
//! profile as a small discrete distribution with decaying weights and a
//! conditional mean of ≈ 2×.

use rand::Rng;

use crate::dist::{bernoulli, Discrete};

/// The Bing/Mantri-like slowdown profile: `(factor, weight)` pairs.
/// Mantri reports most stragglers at 1.2–2× with a tail to ~10×; the
/// weights below give a conditional mean slowdown of ≈ 2×.
const BING_PROFILE: &[(f64, f64)] = &[
    (1.2, 0.35),
    (1.5, 0.30),
    (2.0, 0.17),
    (3.0, 0.10),
    (5.0, 0.05),
    (8.0, 0.02),
    (10.0, 0.01),
];

/// Injects stragglers: with probability `prob`, a service time is
/// multiplied by a slowdown factor drawn from a heavy-tailed profile.
///
/// # Examples
///
/// ```
/// use spcache_workload::StragglerModel;
/// use rand::SeedableRng;
/// use spcache_sim::Xoshiro256StarStar;
///
/// let model = StragglerModel::bing(0.05);
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let t = model.apply(1.0, &mut rng);
/// assert!(t >= 1.0); // never speeds anything up
/// ```
#[derive(Debug, Clone)]
pub struct StragglerModel {
    prob: f64,
    slowdown: Discrete,
}

impl StragglerModel {
    /// A model with straggler probability `prob` and the Bing-like
    /// heavy-tailed slowdown profile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= prob <= 1`.
    pub fn bing(prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        StragglerModel {
            prob,
            slowdown: Discrete::new(BING_PROFILE),
        }
    }

    /// A model that never straggles (the "w/o stragglers" curves).
    pub fn none() -> Self {
        StragglerModel {
            prob: 0.0,
            slowdown: Discrete::new(&[(1.0, 1.0)]),
        }
    }

    /// A model with a custom slowdown profile.
    pub fn custom(prob: f64, profile: &[(f64, f64)]) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        StragglerModel {
            prob,
            slowdown: Discrete::new(profile),
        }
    }

    /// The straggler probability.
    pub fn probability(&self) -> f64 {
        self.prob
    }

    /// Expected multiplicative inflation of a service time under this
    /// model: `1 + prob · (E[slowdown] − 1)`.
    pub fn expected_inflation(&self) -> f64 {
        1.0 + self.prob * (self.slowdown.mean() - 1.0)
    }

    /// Expected **maximum** slowdown factor over `k` independent partition
    /// reads: `E[max(F_1 … F_k)]` where each `F_j` is 1 with probability
    /// `1 − p` and drawn from the profile otherwise.
    ///
    /// This is the analytic straggler-exposure term a fork-join read of
    /// `k` partitions faces — exactly the "too many partitions are
    /// susceptible to stragglers" cost the paper's Algorithm 1 balances
    /// against load spreading. Computed exactly from the discrete CDF:
    /// `E[max] = Σ_v v · (F(v)^k − F(v⁻)^k)`.
    pub fn expected_max_factor(&self, k: usize) -> f64 {
        assert!(k >= 1);
        if self.prob == 0.0 {
            return 1.0;
        }
        // Combined distribution: 1.0 w.p. (1 − p), profile value v w.p.
        // p·w(v). Support is sorted ascending with 1.0 first (all profile
        // factors exceed 1).
        let mut values = vec![1.0];
        let mut probs = vec![1.0 - self.prob];
        for (v, w) in self.slowdown.support() {
            values.push(v);
            probs.push(self.prob * w);
        }
        let mut expect = 0.0;
        let mut cdf_prev: f64 = 0.0;
        for (v, p) in values.iter().zip(&probs) {
            let cdf = (cdf_prev + p).min(1.0);
            expect += v * (cdf.powi(k as i32) - cdf_prev.powi(k as i32));
            cdf_prev = cdf;
        }
        expect
    }

    /// Applies the model to one service time.
    pub fn apply<R: Rng + ?Sized>(&self, service: f64, rng: &mut R) -> f64 {
        if self.prob > 0.0 && bernoulli(rng, self.prob) {
            service * self.slowdown.sample(rng)
        } else {
            service
        }
    }

    /// Draws only the slowdown factor (1.0 when not straggling); useful
    /// when the caller wants to log straggler occurrences.
    pub fn draw_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.prob > 0.0 && bernoulli(rng, self.prob) {
            self.slowdown.sample(rng)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn none_model_is_identity() {
        let m = StragglerModel::none();
        let mut r = rng(1);
        for i in 1..100 {
            let s = i as f64 * 0.1;
            assert_eq!(m.apply(s, &mut r), s);
        }
        assert_eq!(m.expected_inflation(), 1.0);
    }

    #[test]
    fn straggler_frequency_matches_probability() {
        let m = StragglerModel::bing(0.05);
        let mut r = rng(2);
        let n = 100_000;
        let stragglers = (0..n).filter(|_| m.draw_factor(&mut r) > 1.0).count();
        let f = stragglers as f64 / n as f64;
        assert!((f - 0.05).abs() < 0.005, "freq {f}");
    }

    #[test]
    fn slowdowns_within_profile_range() {
        let m = StragglerModel::bing(1.0); // always straggle
        let mut r = rng(3);
        for _ in 0..10_000 {
            let f = m.draw_factor(&mut r);
            assert!((1.2..=10.0).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn expected_inflation_is_modest_at_5_percent() {
        let m = StragglerModel::bing(0.05);
        let infl = m.expected_inflation();
        // Mean slowdown ~2.0 → inflation ~1.05.
        assert!(infl > 1.02 && infl < 1.10, "inflation {infl}");
    }

    #[test]
    fn empirical_inflation_matches_expected() {
        let m = StragglerModel::bing(0.05);
        let mut r = rng(4);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| m.apply(1.0, &mut r)).sum();
        let empirical = total / n as f64;
        assert!(
            (empirical - m.expected_inflation()).abs() < 0.02,
            "empirical {empirical} vs {}",
            m.expected_inflation()
        );
    }

    #[test]
    fn custom_profile() {
        let m = StragglerModel::custom(1.0, &[(4.0, 1.0)]);
        let mut r = rng(5);
        assert_eq!(m.apply(2.0, &mut r), 8.0);
    }

    #[test]
    fn expected_max_factor_monotone_in_k() {
        let m = StragglerModel::bing(0.05);
        let mut prev = 0.0;
        for k in 1..=40 {
            let e = m.expected_max_factor(k);
            assert!(e >= prev, "E[max] must grow with k");
            assert!((1.0..=10.0).contains(&e));
            prev = e;
        }
        // k = 1 is just the single-draw expectation.
        assert!((m.expected_max_factor(1) - m.expected_inflation()).abs() < 1e-9);
    }

    #[test]
    fn expected_max_factor_matches_monte_carlo() {
        let m = StragglerModel::bing(0.05);
        let mut r = rng(11);
        for k in [4usize, 15] {
            let n = 40_000;
            let mut total = 0.0;
            for _ in 0..n {
                let mut mx: f64 = 1.0;
                for _ in 0..k {
                    mx = mx.max(m.draw_factor(&mut r));
                }
                total += mx;
            }
            let mc = total / n as f64;
            let analytic = m.expected_max_factor(k);
            assert!(
                (mc - analytic).abs() < 0.05,
                "k={k}: MC {mc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn none_model_max_factor_is_one() {
        assert_eq!(StragglerModel::none().expected_max_factor(30), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_rejected() {
        let _ = StragglerModel::bing(1.5);
    }
}

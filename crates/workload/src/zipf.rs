//! Zipf popularity distributions.
//!
//! File popularity in production clusters is Zipf-like (paper §2.2): the
//! probability of accessing the rank-`r` file is `r^{-s} / H_{N,s}` where
//! `H_{N,s}` is the generalized harmonic number. The paper uses exponents
//! 1.05 and 1.1 ("high skewness").

use rand::Rng;

use crate::dist::unit_f64;

/// Normalized Zipf popularities for ranks `1..=n`: element `i` is the
/// access probability of the `(i+1)`-th most popular file.
///
/// # Examples
///
/// ```
/// use spcache_workload::zipf::zipf_popularities;
///
/// let p = zipf_popularities(100, 1.1);
/// assert_eq!(p.len(), 100);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(p[0] > p[50]); // monotone decreasing in rank
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `exponent` is negative/NaN.
pub fn zipf_popularities(n: usize, exponent: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one file");
    assert!(
        exponent >= 0.0 && !exponent.is_nan(),
        "exponent must be non-negative"
    );
    let mut p: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-exponent)).collect();
    let total: f64 = p.iter().sum();
    for v in &mut p {
        *v /= total;
    }
    p
}

/// Samples ranks from a Zipf distribution by inverse-CDF binary search over
/// the precomputed cumulative popularity table. O(log n) per draw, exact.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with the given exponent.
    pub fn new(n: usize, exponent: f64) -> Self {
        let p = zipf_popularities(n, exponent);
        Self::from_popularities(&p)
    }

    /// Builds a sampler from an arbitrary (not necessarily Zipf) popularity
    /// vector; popularities are normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `pops` is empty or sums to zero.
    pub fn from_popularities(pops: &[f64]) -> Self {
        assert!(!pops.is_empty(), "empty popularity vector");
        let total: f64 = pops.iter().sum();
        assert!(total > 0.0, "popularities must sum to a positive value");
        let mut cdf = Vec::with_capacity(pops.len());
        let mut acc = 0.0;
        for &p in pops {
            assert!(p >= 0.0, "negative popularity");
            acc += p / total;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a 0-based rank (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = unit_f64(rng);
        // partition_point returns the count of elements <= u, i.e. the
        // first index with cdf > u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_sim::Xoshiro256StarStar;

    #[test]
    fn popularities_normalized_and_sorted() {
        let p = zipf_popularities(1000, 1.05);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let p = zipf_popularities(10, 0.0);
        for &v in &p {
            assert!((v - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let p1 = zipf_popularities(100, 0.8);
        let p2 = zipf_popularities(100, 1.4);
        assert!(p2[0] > p1[0]);
        assert!(p2[99] < p1[99]);
    }

    #[test]
    fn single_file_gets_everything() {
        let p = zipf_popularities(1, 1.1);
        assert_eq!(p, vec![1.0]);
        let s = ZipfSampler::new(1, 1.1);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), 0);
    }

    #[test]
    fn sampler_frequencies_match_popularities() {
        let n = 50;
        let exp = 1.1;
        let pops = zipf_popularities(n, exp);
        let s = ZipfSampler::new(n, exp);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let draws = 200_000;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[s.sample(&mut rng)] += 1;
        }
        for i in [0usize, 1, 5, 20] {
            let f = counts[i] as f64 / draws as f64;
            assert!(
                (f - pops[i]).abs() < 0.01,
                "rank {i}: freq {f} vs pop {}",
                pops[i]
            );
        }
    }

    #[test]
    fn sampler_from_custom_popularities() {
        let s = ZipfSampler::from_popularities(&[0.0, 3.0, 1.0]);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "zero-popularity rank must never sample");
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn sample_never_out_of_bounds() {
        let s = ZipfSampler::new(3, 2.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn zero_files_rejected() {
        let _ = zipf_popularities(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive value")]
    fn zero_mass_rejected() {
        let _ = ZipfSampler::from_popularities(&[0.0, 0.0]);
    }
}

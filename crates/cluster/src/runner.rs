//! High-level experiment helpers: run a scheme against a standard
//! read workload and collect the paper's metrics.

use spcache_core::file::FileSet;
use spcache_core::scheme::CachingScheme;

use crate::config::ClusterConfig;
use crate::engine::{simulate_reads, SimResult};
use crate::workload::ReadWorkload;

/// The metrics every figure reports.
#[derive(Debug, Clone)]
pub struct ExperimentStats {
    /// Scheme name.
    pub scheme: String,
    /// Aggregate request rate used.
    pub rate: f64,
    /// Mean read latency (s).
    pub mean: f64,
    /// 95th-percentile read latency (s).
    pub p95: f64,
    /// Coefficient of variation of read latency.
    pub cv: f64,
    /// Imbalance factor η.
    pub eta: f64,
    /// Cache hit ratio.
    pub hit_ratio: f64,
    /// Total cached bytes (memory footprint).
    pub layout_bytes: f64,
}

impl ExperimentStats {
    /// Collapses a [`SimResult`].
    pub fn from_result(scheme: String, rate: f64, mut res: SimResult) -> Self {
        ExperimentStats {
            scheme,
            rate,
            mean: res.mean_latency(),
            p95: res.p95_latency(),
            cv: res.cv(),
            eta: res.imbalance_factor(),
            hit_ratio: res.hit_ratio,
            layout_bytes: res.layout_bytes,
        }
    }
}

/// Runs one scheme at one aggregate rate with `n_requests` Poisson
/// requests and returns the figure-ready stats.
pub fn run_read_experiment<S: CachingScheme + ?Sized>(
    scheme: &S,
    files: &FileSet,
    rate: f64,
    n_requests: usize,
    cfg: &ClusterConfig,
) -> ExperimentStats {
    let workload = ReadWorkload::poisson(files, rate, n_requests, cfg.seed ^ 0x9e37);
    let res = simulate_reads(scheme, files, &workload, cfg);
    ExperimentStats::from_result(scheme.name(), rate, res)
}

/// Runs several schemes on the *same* workload (paired comparison, the
/// right way to compare latency curves).
pub fn compare_schemes(
    schemes: &[&dyn CachingScheme],
    files: &FileSet,
    rate: f64,
    n_requests: usize,
    cfg: &ClusterConfig,
) -> Vec<ExperimentStats> {
    let workload = ReadWorkload::poisson(files, rate, n_requests, cfg.seed ^ 0x9e37);
    schemes
        .iter()
        .map(|s| {
            let res = simulate_reads(*s, files, &workload, cfg);
            ExperimentStats::from_result(s.name(), rate, res)
        })
        .collect()
}

/// Latency improvement of `ours` over `baseline` per the paper's Eq. 14:
/// `(D − D_SP)/D × 100%`.
pub fn latency_improvement_percent(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcache_baselines::{EcCache, SelectiveReplication};
    use spcache_core::SpCache;
    use spcache_workload::zipf::zipf_popularities;

    fn files() -> FileSet {
        FileSet::uniform_size(100e6, &zipf_popularities(100, 1.05))
    }

    #[test]
    fn stats_are_populated() {
        let f = files();
        let scheme = SpCache::with_alpha(10.0 / f.max_load());
        let stats =
            run_read_experiment(&scheme, &f, 6.0, 4_000, &ClusterConfig::ec2_default());
        assert!(stats.mean > 0.0);
        assert!(stats.p95 >= stats.mean * 0.5);
        assert!(stats.layout_bytes > 0.0);
        assert_eq!(stats.rate, 6.0);
        assert!(stats.scheme.contains("sp-cache"));
    }

    #[test]
    fn sp_cache_beats_baselines_at_high_load() {
        // Fig. 13's ordering: SP < EC < SR in mean latency under load,
        // with SP using the least memory. SP-Cache is configured the way
        // the system really configures itself — by Algorithm 1.
        let f = files();
        let cfg = ClusterConfig::ec2_default();
        let (sp, _) = SpCache::tuned(
            &f,
            cfg.n_servers,
            cfg.bandwidth,
            16.0,
            &spcache_core::tuner::TunerConfig::default(),
        );
        let ec = EcCache::paper_config();
        let sr = SelectiveReplication::paper_config();
        let stats = compare_schemes(&[&sp, &ec, &sr], &f, 16.0, 12_000, &cfg);
        let (s, e, r) = (&stats[0], &stats[1], &stats[2]);
        assert!(
            s.mean < e.mean && e.mean < r.mean,
            "mean ordering violated: sp {} ec {} sr {}",
            s.mean,
            e.mean,
            r.mean
        );
        assert!(
            s.layout_bytes < e.layout_bytes,
            "SP must use less memory than EC"
        );
        assert!(s.eta < r.eta, "SP eta {} vs SR eta {}", s.eta, r.eta);
    }

    #[test]
    fn improvement_formula_matches_eq14() {
        assert_eq!(latency_improvement_percent(2.0, 1.0), 50.0);
        assert_eq!(latency_improvement_percent(0.0, 1.0), 0.0);
        assert!(latency_improvement_percent(1.0, 2.0) < 0.0);
    }
}

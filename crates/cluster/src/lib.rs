#![warn(missing_docs)]

//! Event-driven cluster-cache simulator — the repository's stand-in for
//! the paper's EC2 deployments.
//!
//! The paper's latency results are driven by five mechanisms, all modeled
//! here explicitly:
//!
//! 1. **Queueing at cache servers** — each server is a FIFO queue fed in
//!    global time order ([`spcache_sim::FifoQueue`]); hot spots emerge
//!    naturally from skewed arrivals.
//! 2. **Network transfer** — a partition of `b` bytes at bandwidth `B`
//!    with `c` concurrent connections takes `b / (B · goodput(c))`,
//!    optionally exponentially jittered (the queueing model's assumption);
//!    [`network::GoodputModel`] is calibrated to Fig. 6.
//! 3. **Stragglers** — per-fetch Bernoulli slowdown with the Bing profile
//!    ([`spcache_workload::StragglerModel`]).
//! 4. **Coding CPU cost** — read plans carry a decode cost, write plans an
//!    encode cost (EC-Cache only).
//! 5. **Cache misses** — per-server LRU over partitions with a byte
//!    budget ([`spcache_core::LruCache`], shared with the real store's
//!    memory-budgeted workers); a miss inflates the fetch by the
//!    configured penalty (§7.7 uses 3×).
//!
//! [`engine::simulate_reads`] / [`engine::simulate_writes`] execute any
//! [`spcache_core::CachingScheme`] against a read/write workload and
//! return latency samples, per-server loads and hit ratios;
//! [`runner`] wraps common experiment shapes.

pub mod config;
pub mod engine;
pub mod network;
pub mod runner;
pub mod workload;

pub use config::ClusterConfig;
pub use engine::{simulate_reads, simulate_writes, SimResult};
pub use network::GoodputModel;
pub use runner::{run_read_experiment, ExperimentStats};
pub use workload::ReadWorkload;

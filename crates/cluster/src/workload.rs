//! Read/write workloads for the simulator: time-ordered `(time, file)`
//! request sequences.

use rand::SeedableRng;
use spcache_core::file::{FileId, FileSet};
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::arrivals::{MmppProcess, PoissonProcess};
use spcache_workload::zipf::ZipfSampler;

/// A time-ordered sequence of file read requests.
#[derive(Debug, Clone)]
pub struct ReadWorkload {
    requests: Vec<(f64, FileId)>,
}

impl ReadWorkload {
    /// Poisson arrivals at aggregate rate `lambda` (req/s); each request
    /// samples a file by popularity. This is the paper's EC2 client model
    /// (20 clients with independent Poisson processes merge into one
    /// Poisson process).
    pub fn poisson(files: &FileSet, lambda: f64, n_requests: usize, seed: u64) -> Self {
        let pops: Vec<f64> = files.iter().map(|(_, f)| f.popularity).collect();
        let sampler = ZipfSampler::from_popularities(&pops);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let arrival_rng = rng.split();
        let arrivals = PoissonProcess::new(lambda, arrival_rng);
        let requests = arrivals
            .take(n_requests)
            .map(|t| (t, sampler.sample(&mut rng)))
            .collect();
        ReadWorkload { requests }
    }

    /// Bursty (MMPP) arrivals standing in for the Google-trace submission
    /// sequence of §7.7.
    pub fn bursty(
        files: &FileSet,
        avg_rate: f64,
        burstiness: f64,
        n_requests: usize,
        seed: u64,
    ) -> Self {
        let pops: Vec<f64> = files.iter().map(|(_, f)| f.popularity).collect();
        let sampler = ZipfSampler::from_popularities(&pops);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let arrival_rng = rng.split();
        let arrivals = MmppProcess::bursty(avg_rate, burstiness, arrival_rng);
        let requests = arrivals
            .take(n_requests)
            .map(|t| (t, sampler.sample(&mut rng)))
            .collect();
        ReadWorkload { requests }
    }

    /// Builds `(FileSet, ReadWorkload)` from a parsed plain-text workload
    /// spec (see [`spcache_workload::spec`]).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no requests (a spec without a trace can
    /// still drive Poisson workloads through its `FileSet`).
    pub fn from_spec(spec: &spcache_workload::spec::WorkloadSpec) -> (FileSet, Self) {
        let files = FileSet::from_parts(&spec.sizes(), &spec.normalized_popularities());
        let workload = ReadWorkload::from_trace(spec.requests.clone());
        (files, workload)
    }

    /// Wraps an explicit trace (must be time-ordered).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or out of order.
    pub fn from_trace(requests: Vec<(f64, FileId)>) -> Self {
        assert!(!requests.is_empty(), "empty workload");
        assert!(
            requests.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace must be time-ordered"
        );
        ReadWorkload { requests }
    }

    /// The request sequence.
    pub fn requests(&self) -> &[(f64, FileId)] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Duration spanned by the workload.
    pub fn duration(&self) -> f64 {
        self.requests.last().map_or(0.0, |&(t, _)| t)
            - self.requests.first().map_or(0.0, |&(t, _)| t)
    }

    /// Empirical aggregate request rate.
    pub fn rate(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 {
            0.0
        } else {
            self.requests.len() as f64 / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcache_workload::zipf::zipf_popularities;

    fn files() -> FileSet {
        FileSet::uniform_size(40e6, &zipf_popularities(50, 1.1))
    }

    #[test]
    fn poisson_workload_rate_and_order() {
        let w = ReadWorkload::poisson(&files(), 8.0, 20_000, 1);
        assert_eq!(w.len(), 20_000);
        assert!(w.requests().windows(2).all(|p| p[0].0 <= p[1].0));
        assert!((w.rate() - 8.0).abs() < 0.5, "rate {}", w.rate());
    }

    #[test]
    fn popular_files_requested_more() {
        let w = ReadWorkload::poisson(&files(), 8.0, 50_000, 2);
        let count0 = w.requests().iter().filter(|&&(_, f)| f == 0).count();
        let count49 = w.requests().iter().filter(|&&(_, f)| f == 49).count();
        assert!(count0 > 5 * count49, "{count0} vs {count49}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ReadWorkload::poisson(&files(), 5.0, 1000, 3);
        let b = ReadWorkload::poisson(&files(), 5.0, 1000, 3);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn bursty_workload_is_ordered() {
        let w = ReadWorkload::bursty(&files(), 6.0, 10.0, 10_000, 4);
        assert!(w.requests().windows(2).all(|p| p[0].0 <= p[1].0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_trace_rejected() {
        let _ = ReadWorkload::from_trace(vec![(2.0, 0), (1.0, 1)]);
    }

    #[test]
    fn from_spec_builds_fileset_and_trace() {
        let spec = spcache_workload::spec::WorkloadSpec::parse(
            "file 1000000 0.7\nfile 2000000 0.3\nreq 0.0 0\nreq 0.5 1\n",
        )
        .unwrap();
        let (files, workload) = ReadWorkload::from_spec(&spec);
        assert_eq!(files.len(), 2);
        assert_eq!(files.get(1).size_bytes, 2e6);
        assert!((files.get(0).popularity - 0.7).abs() < 1e-12);
        assert_eq!(workload.requests(), &[(0.0, 0), (0.5, 1)]);
    }
}

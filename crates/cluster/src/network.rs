//! Network goodput model — re-exported from `spcache-core` so the analytic
//! bound (tuner) and the simulator share one calibration (Fig. 6).

pub use spcache_core::goodput::Goodput as GoodputModel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_matches_core_calibration() {
        assert_eq!(GoodputModel::gbps1(), spcache_core::Goodput::gbps1());
        assert_eq!(GoodputModel::ideal().factor(50), 1.0);
    }
}

//! The simulation engine: executes read/write plans against FIFO server
//! queues.

use rand::SeedableRng;
use spcache_core::file::FileSet;
use spcache_core::scheme::CachingScheme;
use spcache_metrics::{LoadTracker, Samples, Summary};
use spcache_sim::{FifoQueue, SimTime, Xoshiro256StarStar};
use spcache_workload::dist::exponential;

use crate::config::{ClusterConfig, ServiceModel};
use crate::workload::ReadWorkload;
use spcache_core::lru::LruCache;

/// Everything a simulation run measures.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-request latency samples (seconds).
    pub latencies: Samples,
    /// Streaming summary of the same latencies (mean / CV).
    pub summary: Summary,
    /// Bytes served per server (η comes from here).
    pub loads: LoadTracker,
    /// Cache hit ratio across all partition accesses (1.0 with unlimited
    /// capacity).
    pub hit_ratio: f64,
    /// Total cached bytes of the scheme's layout (memory footprint).
    pub layout_bytes: f64,
}

impl SimResult {
    /// Mean latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        self.summary.mean()
    }

    /// 95th-percentile latency in seconds (the paper's tail metric).
    pub fn p95_latency(&mut self) -> f64 {
        self.latencies.percentile(95.0)
    }

    /// Coefficient of variation of latency (Tables 1–3).
    pub fn cv(&self) -> f64 {
        self.summary.cv()
    }

    /// Imbalance factor η (Eq. 15).
    pub fn imbalance_factor(&self) -> f64 {
        self.loads.imbalance_factor()
    }
}

/// Simulates a read workload under `scheme`.
///
/// Mechanics per request, in global time order:
///
/// 1. the scheme plans the read (which chunks, how many to wait for,
///    decode cost),
/// 2. each fetched chunk's service time is `bytes / (B · goodput(c))`
///    (optionally exponentially jittered), inflated by the straggler model
///    and by the miss penalty if the partition is not LRU-resident,
/// 3. each fetch joins its server's FIFO queue; the request completes when
///    the `wait_for`-th fetch finishes,
/// 4. latency = completion − arrival + decode cost.
pub fn simulate_reads<S: CachingScheme + ?Sized>(
    scheme: &S,
    files: &FileSet,
    workload: &ReadWorkload,
    cfg: &ClusterConfig,
) -> SimResult {
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);
    let mut layout_rng = rng.split();
    let mut plan_rng = rng.split();
    let mut service_rng = rng.split();
    let mut straggler_rng = rng.split();

    let layout = scheme.build_layout(files, cfg.n_servers, &mut layout_rng);
    let layout_bytes = layout.total_cached_bytes();

    let mut queues: Vec<FifoQueue> = (0..cfg.n_servers).map(|_| FifoQueue::new()).collect();
    let mut caches: Vec<LruCache<(usize, usize)>> = (0..cfg.n_servers)
        .map(|_| LruCache::new(cfg.cache_capacity))
        .collect();
    // Pre-warm: the cluster caches the layout before clients arrive
    // (paper: "the cluster is used to cache 50 files"). Insert cold files
    // first so that under a throttled budget the hot head (low file ids)
    // is what stays resident initially; LRU churn takes over from there.
    for file in (0..layout.len()).rev() {
        for (idx, chunk) in layout.file(file).chunks.iter().enumerate() {
            caches[chunk.server].insert((file, idx), chunk.bytes);
        }
    }
    let mut loads = LoadTracker::new(cfg.n_servers);
    let mut latencies = Samples::with_capacity(workload.len());
    let mut summary = Summary::new();

    // Reusable buffers for fetch completion times and straggler draws.
    let mut finishes: Vec<f64> = Vec::with_capacity(cfg.n_servers);
    let mut straggler_factors: Vec<f64> = Vec::with_capacity(cfg.n_servers);

    for &(t, file) in workload.requests() {
        let arrival = SimTime::from_secs(t);
        let plan = scheme.read_plan(file, files, &layout, &mut plan_rng);
        debug_assert!(plan.wait_for >= 1 && plan.wait_for <= plan.fetches.len());

        let connections = plan.fetches.len();
        finishes.clear();
        straggler_factors.clear();
        let mut needed_bytes = 0.0;

        for fetch in &plan.fetches {
            let chunk = fetch.chunk;
            needed_bytes += chunk.bytes;
            // Server side: the server NIC streams one partition at a time
            // (FIFO), so per-fetch service is bytes / server bandwidth.
            let mean_service = chunk.bytes / cfg.bandwidth;
            let mut service = match cfg.service {
                ServiceModel::Deterministic => mean_service,
                ServiceModel::Exponential => {
                    exponential(&mut service_rng, 1.0 / mean_service)
                }
            };
            // A straggling server thread sleeps while serving (§4.2): its
            // queue occupancy inflates, and — tracked separately below —
            // the partition's *delivery* to the client stretches by the
            // same factor.
            let f = cfg.stragglers.draw_factor(&mut straggler_rng);
            service *= f;
            straggler_factors.push(f);
            // LRU: a miss costs the penalty multiplier (backing-store
            // fetch) and installs the partition. Keyed by the chunk's
            // stable layout index, not its position in this read's plan.
            let hit = caches[chunk.server].access((file, fetch.index), chunk.bytes);
            if !hit {
                service *= cfg.miss_penalty;
            }
            let served = queues[chunk.server].enqueue(arrival, service);
            finishes.push(served.finish.as_secs());
            loads.add(chunk.server, chunk.bytes);
        }

        // Completion = wait_for-th smallest finish (late binding takes the
        // k fastest of k+1).
        let completion = kth_smallest(&mut finishes, plan.wait_for);
        // Client side: the bytes the read actually waits for funnel
        // through the reader's single NIC at goodput g(connections)
        // (Fig. 6) — a hard floor on the read latency that makes
        // over-splitting expensive (the rise in Figs. 5 and 8).
        let waited_bytes =
            needed_bytes * plan.wait_for as f64 / plan.fetches.len() as f64;
        let client_floor =
            waited_bytes / (cfg.bandwidth * cfg.goodput.factor(connections));
        // All concurrent streams share the client NIC, so every partition's
        // delivery spans roughly the whole transfer window; a straggling
        // partition therefore delays the *read* to ~factor × that window
        // (the paper's injection: "delayed the read completion by a
        // factor"). Late binding dodges the slowest fetches: drop the
        // largest (fetches − wait_for) factors before taking the max.
        let f_read = effective_straggle(&mut straggler_factors, plan.wait_for);
        let latency = (completion - t).max(client_floor * f_read) + plan.post_cost;
        latencies.record(latency);
        summary.record(latency);
    }

    let (hits, misses) = caches
        .iter()
        .fold((0u64, 0u64), |(h, m), c| {
            let (ch, cm) = c.counters();
            (h + ch, m + cm)
        });
    let hit_ratio = if hits + misses == 0 {
        1.0
    } else {
        hits as f64 / (hits + misses) as f64
    };

    SimResult {
        latencies,
        summary,
        loads,
        hit_ratio,
        layout_bytes,
    }
}

/// Simulates a sequence of writes (one at a time, as the Fig. 22
/// experiment does): each write pays the scheme's encode cost, then pushes
/// all its chunks in parallel to idle servers; latency is the slowest
/// chunk plus the encode time.
///
/// Returns per-write latencies.
pub fn simulate_writes<S: CachingScheme + ?Sized>(
    scheme: &S,
    files: &FileSet,
    writes: &[usize],
    cfg: &ClusterConfig,
) -> Samples {
    // Decorrelate the write stream's randomness from the read stream's.
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed ^ 0x0057_5249_5445);
    let mut plan_rng = rng.split();
    let mut service_rng = rng.split();
    let mut straggler_rng = rng.split();

    let mut out = Samples::with_capacity(writes.len());
    for &file in writes {
        let plan = scheme.write_plan(file, files, cfg.n_servers, &mut plan_rng);
        let connections = plan.writes.len().max(1);
        let mut slowest = 0.0f64;
        for chunk in &plan.writes {
            let mean = chunk.bytes / cfg.bandwidth;
            let mut service = match cfg.service {
                ServiceModel::Deterministic => mean,
                ServiceModel::Exponential => exponential(&mut service_rng, 1.0 / mean),
            };
            service = cfg.stragglers.apply(service, &mut straggler_rng);
            slowest = slowest.max(service);
        }
        // All written bytes leave through the writer's NIC: replication's
        // r full copies and chunking's many streams pay for it here.
        let client_floor =
            plan.total_bytes() / (cfg.bandwidth * cfg.goodput.factor(connections));
        out.record(plan.pre_cost + slowest.max(client_floor));
    }
    out
}

/// The straggler factor a read experiences: the max draw over the fetches
/// it waits for. Late binding waits for only `wait_for` of the fetches and
/// abandons the slowest, so the largest `len − wait_for` draws are dropped
/// first.
fn effective_straggle(factors: &mut [f64], wait_for: usize) -> f64 {
    debug_assert!(wait_for >= 1 && wait_for <= factors.len());
    factors.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN factors"));
    factors[wait_for - 1]
}

/// The `k`-th smallest value (1-based) of `xs`, destroying order.
fn kth_smallest(xs: &mut [f64], k: usize) -> f64 {
    debug_assert!(k >= 1 && k <= xs.len());
    let idx = k - 1;
    let (_, kth, _) =
        xs.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("no NaN finishes"));
    *kth
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcache_core::SpCache;
    use spcache_workload::zipf::zipf_popularities;

    fn files(n: usize) -> FileSet {
        FileSet::uniform_size(40e6, &zipf_popularities(n, 1.1))
    }

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig::ec2_default()
    }

    #[test]
    fn kth_smallest_selects_correctly() {
        let mut xs = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(kth_smallest(&mut xs.clone(), 1), 1.0);
        assert_eq!(kth_smallest(&mut xs.clone(), 3), 3.0);
        assert_eq!(kth_smallest(&mut xs, 5), 5.0);
    }

    #[test]
    fn simulation_produces_sane_latencies() {
        let f = files(50);
        let w = ReadWorkload::poisson(&f, 5.0, 5_000, 1);
        let scheme = SpCache::with_alpha(5.0 / f.max_load());
        let mut res = simulate_reads(&scheme, &f, &w, &quick_cfg());
        assert_eq!(res.latencies.len(), 5_000);
        assert!(res.mean_latency() > 0.0);
        assert!(res.p95_latency() >= res.mean_latency() * 0.5);
        assert_eq!(res.hit_ratio, 1.0, "unlimited cache must always hit");
        assert!(res.imbalance_factor() >= 0.0);
    }

    #[test]
    fn higher_load_raises_latency() {
        let f = files(50);
        let scheme = SpCache::with_alpha(0.0); // whole files → hot spots
        let cfg = quick_cfg();
        let lo = simulate_reads(
            &scheme,
            &f,
            &ReadWorkload::poisson(&f, 3.0, 4_000, 2),
            &cfg,
        );
        let hi = simulate_reads(
            &scheme,
            &f,
            &ReadWorkload::poisson(&f, 10.0, 4_000, 2),
            &cfg,
        );
        assert!(
            hi.mean_latency() > lo.mean_latency(),
            "lo {} hi {}",
            lo.mean_latency(),
            hi.mean_latency()
        );
    }

    #[test]
    fn partitioning_beats_whole_file_under_skew() {
        // The paper's core empirical claim, in miniature (Fig. 5).
        let f = files(50);
        let cfg = quick_cfg();
        let w = ReadWorkload::poisson(&f, 10.0, 8_000, 3);
        let whole = simulate_reads(&SpCache::with_alpha(0.0), &f, &w, &cfg);
        let split = simulate_reads(
            &SpCache::with_alpha(15.0 / f.max_load()),
            &f,
            &w,
            &cfg,
        );
        assert!(
            split.mean_latency() < whole.mean_latency() * 0.5,
            "split {} vs whole {}",
            split.mean_latency(),
            whole.mean_latency()
        );
        assert!(split.imbalance_factor() < whole.imbalance_factor());
    }

    #[test]
    fn throttled_cache_reduces_hit_ratio() {
        let f = files(50); // 2 GB total
        let w = ReadWorkload::poisson(&f, 5.0, 5_000, 4);
        let scheme = SpCache::with_alpha(5.0 / f.max_load());
        let unlimited = simulate_reads(&scheme, &f, &w, &quick_cfg());
        // 10 MB per server × 30 = 300 MB for a 2 GB working set.
        let throttled = simulate_reads(
            &scheme,
            &f,
            &w,
            &quick_cfg().with_cache_capacity(10e6),
        );
        assert_eq!(unlimited.hit_ratio, 1.0);
        assert!(throttled.hit_ratio < 0.9, "hit {}", throttled.hit_ratio);
        assert!(throttled.mean_latency() > unlimited.mean_latency());
    }

    #[test]
    fn stragglers_inflate_tail() {
        let f = files(50);
        let w = ReadWorkload::poisson(&f, 6.0, 8_000, 5);
        let scheme = SpCache::with_alpha(8.0 / f.max_load());
        let clean_cfg = quick_cfg();
        let mut clean = simulate_reads(&scheme, &f, &w, &clean_cfg);
        let straggly_cfg =
            quick_cfg().with_stragglers(spcache_workload::StragglerModel::bing(0.05));
        let mut straggly = simulate_reads(&scheme, &f, &w, &straggly_cfg);
        assert!(
            straggly.p95_latency() > clean.p95_latency(),
            "straggler tail {} vs clean {}",
            straggly.p95_latency(),
            clean.p95_latency()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let f = files(30);
        let w = ReadWorkload::poisson(&f, 5.0, 2_000, 6);
        let scheme = SpCache::with_alpha(5.0 / f.max_load());
        let a = simulate_reads(&scheme, &f, &w, &quick_cfg());
        let b = simulate_reads(&scheme, &f, &w, &quick_cfg());
        assert_eq!(a.latencies.as_slice(), b.latencies.as_slice());
    }

    #[test]
    fn write_simulation_scales_with_size() {
        let sizes = [10e6, 200e6];
        let f = FileSet::from_parts(&sizes, &[0.5, 0.5]);
        let scheme = SpCache::with_alpha(0.0);
        let cfg = quick_cfg().with_service(ServiceModel::Deterministic);
        let lat = simulate_writes(&scheme, &f, &[0, 1], &cfg);
        let xs = lat.as_slice();
        assert!(xs[1] > 10.0 * xs[0], "write latencies {xs:?}");
    }
}

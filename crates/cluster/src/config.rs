//! Simulator configuration.

use spcache_workload::StragglerModel;

use crate::network::GoodputModel;

/// How per-fetch service times are drawn around their mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceModel {
    /// Exactly `bytes / effective_bandwidth` — for deterministic ablations.
    Deterministic,
    /// Exponential with that mean — the queueing model's assumption, and a
    /// good match for EC2 network jitter (§5.3).
    Exponential,
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of cache servers (paper: 30).
    pub n_servers: usize,
    /// Per-server network bandwidth, bytes/s (paper: 1 Gbps ≈ 125 MB/s on
    /// r3.2xlarge; 0.8 Gbps on m4.large; 1.4 Gbps on c4.4xlarge).
    pub bandwidth: f64,
    /// Per-server cache budget in bytes; `f64::INFINITY` = unbounded
    /// (the skew-resilience experiments run with enough memory).
    pub cache_capacity: f64,
    /// Straggler injection model.
    pub stragglers: StragglerModel,
    /// Connection-count goodput decay.
    pub goodput: GoodputModel,
    /// Service-time distribution.
    pub service: ServiceModel,
    /// Latency multiplier for a cache miss (§7.7 uses 3×).
    pub miss_penalty: f64,
    /// RNG seed for everything the simulator draws.
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's main EC2 setting: 30 r3.2xlarge cache servers, 1 Gbps,
    /// ample memory, no injected stragglers.
    pub fn ec2_default() -> Self {
        ClusterConfig {
            n_servers: 30,
            bandwidth: 125e6,
            cache_capacity: f64::INFINITY,
            stragglers: StragglerModel::none(),
            goodput: GoodputModel::gbps1(),
            service: ServiceModel::Exponential,
            miss_penalty: 3.0,
            seed: 42,
        }
    }

    /// Sets the straggler model (builder style).
    pub fn with_stragglers(mut self, s: StragglerModel) -> Self {
        self.stragglers = s;
        self
    }

    /// Sets the per-server cache budget.
    pub fn with_cache_capacity(mut self, bytes: f64) -> Self {
        self.cache_capacity = bytes;
        self
    }

    /// Sets the per-server bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.bandwidth = bytes_per_sec;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the service-time model.
    pub fn with_service(mut self, service: ServiceModel) -> Self {
        self.service = service;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ClusterConfig::ec2_default();
        assert_eq!(c.n_servers, 30);
        assert_eq!(c.bandwidth, 125e6);
        assert!(c.cache_capacity.is_infinite());
        assert_eq!(c.miss_penalty, 3.0);
    }

    #[test]
    fn builders_compose() {
        let c = ClusterConfig::ec2_default()
            .with_bandwidth(175e6)
            .with_cache_capacity(10e9)
            .with_seed(7)
            .with_service(ServiceModel::Deterministic);
        assert_eq!(c.bandwidth, 175e6);
        assert_eq!(c.cache_capacity, 10e9);
        assert_eq!(c.seed, 7);
        assert_eq!(c.service, ServiceModel::Deterministic);
    }
}

//! Property-based tests of the cluster simulator.

use proptest::prelude::*;

use spcache_cluster::engine::{simulate_reads, simulate_writes};
use spcache_cluster::{ClusterConfig, ReadWorkload};
use spcache_core::{FileSet, SpCache};
use spcache_workload::StragglerModel;

fn popularities(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, 1..max_n).prop_map(|mut v| {
        let total: f64 = v.iter().sum();
        for x in &mut v {
            *x /= total;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Latencies are always positive and at least the client-NIC floor of
    /// the smallest possible read.
    #[test]
    fn latencies_respect_physics(
        pops in popularities(12),
        rate in 0.5f64..6.0,
        k_hot in 1usize..8,
        seed in any::<u64>(),
    ) {
        let files = FileSet::uniform_size(20e6, &pops);
        let cfg = ClusterConfig::ec2_default().with_seed(seed);
        let scheme = SpCache::with_alpha(k_hot as f64 / files.max_load());
        let workload = ReadWorkload::poisson(&files, rate, 800, seed ^ 1);
        let res = simulate_reads(&scheme, &files, &workload, &cfg);
        // Minimum conceivable latency: file bytes at full bandwidth.
        let min_floor = 20e6 / cfg.bandwidth;
        for &l in res.latencies.as_slice() {
            prop_assert!(l > 0.0);
            prop_assert!(l >= min_floor * 0.99, "latency {} below physics {}", l, min_floor);
        }
        prop_assert_eq!(res.latencies.len(), 800);
    }

    /// With unlimited cache, hit ratio is exactly 1 for every scheme and
    /// seed (pre-warmed layout).
    #[test]
    fn unlimited_cache_always_hits(
        pops in popularities(10),
        seed in any::<u64>(),
    ) {
        let files = FileSet::uniform_size(10e6, &pops);
        let cfg = ClusterConfig::ec2_default().with_seed(seed);
        let scheme = SpCache::with_alpha(3.0 / files.max_load());
        let workload = ReadWorkload::poisson(&files, 2.0, 500, seed);
        let res = simulate_reads(&scheme, &files, &workload, &cfg);
        prop_assert_eq!(res.hit_ratio, 1.0);
    }

    /// Total served bytes equal requests × file bytes for a
    /// redundancy-free full-fork scheme.
    #[test]
    fn load_accounting_exact(
        pops in popularities(8),
        seed in any::<u64>(),
    ) {
        let files = FileSet::uniform_size(16e6, &pops);
        let cfg = ClusterConfig::ec2_default().with_seed(seed);
        let scheme = SpCache::with_alpha(4.0 / files.max_load());
        let n_req = 600;
        let workload = ReadWorkload::poisson(&files, 3.0, n_req, seed ^ 2);
        let res = simulate_reads(&scheme, &files, &workload, &cfg);
        let total: f64 = res.loads.loads().iter().sum();
        // Each request fetches exactly the file's bytes (all partitions).
        let expect: f64 = workload
            .requests()
            .iter()
            .map(|&(_, f)| files.get(f).size_bytes)
            .sum();
        prop_assert!((total - expect).abs() < 1.0, "served {} expect {}", total, expect);
    }

    /// Stragglers never reduce any quantile of the latency distribution.
    #[test]
    fn stragglers_stochastically_dominate(
        pops in popularities(8),
        seed in any::<u64>(),
    ) {
        let files = FileSet::uniform_size(20e6, &pops);
        let scheme = SpCache::with_alpha(5.0 / files.max_load());
        let workload = ReadWorkload::poisson(&files, 3.0, 1_000, seed);
        let clean_cfg = ClusterConfig::ec2_default().with_seed(seed);
        let strag_cfg = clean_cfg.clone().with_stragglers(StragglerModel::bing(0.10));
        let clean = simulate_reads(&scheme, &files, &workload, &clean_cfg);
        let strag = simulate_reads(&scheme, &files, &workload, &strag_cfg);
        prop_assert!(strag.summary.mean() >= clean.summary.mean() - 1e-9);
        prop_assert!(strag.summary.max() >= clean.summary.max() - 1e-9);
    }

    /// Write latencies scale (weakly) monotonically with file size for
    /// the deterministic service model.
    #[test]
    fn writes_monotone_in_size(seed in any::<u64>(), base in 1.0f64..100.0) {
        let sizes = [base * 1e6, base * 2e6, base * 4e6];
        let files = FileSet::from_parts(&sizes, &[0.4, 0.3, 0.3]);
        let cfg = ClusterConfig::ec2_default()
            .with_seed(seed)
            .with_service(spcache_cluster::config::ServiceModel::Deterministic);
        let scheme = SpCache::with_alpha(0.0);
        let lat = simulate_writes(&scheme, &files, &[0, 1, 2], &cfg);
        let xs = lat.as_slice();
        prop_assert!(xs[0] <= xs[1] && xs[1] <= xs[2], "{:?}", xs);
    }

    /// Simulation is a pure function of (scheme, workload, config).
    #[test]
    fn simulation_is_deterministic(
        pops in popularities(6),
        seed in any::<u64>(),
    ) {
        let files = FileSet::uniform_size(5e6, &pops);
        let cfg = ClusterConfig::ec2_default().with_seed(seed);
        let scheme = SpCache::with_alpha(2.0 / files.max_load());
        let workload = ReadWorkload::poisson(&files, 2.0, 300, seed);
        let a = simulate_reads(&scheme, &files, &workload, &cfg);
        let b = simulate_reads(&scheme, &files, &workload, &cfg);
        prop_assert_eq!(a.latencies.as_slice(), b.latencies.as_slice());
        prop_assert_eq!(a.loads.loads(), b.loads.loads());
    }
}

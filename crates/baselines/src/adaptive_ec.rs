//! Adaptive EC-Cache — the configuration the EC-Cache paper *claims*.
//!
//! §7.1: "EC-Cache claims to employ an adaptive coding strategy based on
//! file popularities with a total memory overhead of 15 percent. However,
//! the details disclosed … are not sufficient for a full reconstruction."
//! The SP-Cache authors therefore benchmarked uniform (10, 14). This
//! module implements the most natural reading of the claim so the
//! comparison can include it: every file keeps `k` data shards, and a
//! global parity budget (15% of the raw bytes) is spent on parity shards
//! *in proportion to file load* — hot files get wide codes (better
//! spreading and straggler cover), cold files may get none.
//!
//! It remains redundant caching with decode costs; the experiments show
//! it landing between uniform EC-Cache and SP-Cache, which is exactly the
//! paper's implied ordering.

use spcache_core::file::{FileId, FileSet};
use spcache_core::placement::random_distinct;
use spcache_core::scheme::{
    CachingScheme, Chunk, FileLayout, Layout, PlannedFetch, ReadPlan, WritePlan,
};
use spcache_sim::Xoshiro256StarStar;

use crate::cost::CodingCostModel;

/// EC-Cache with a load-proportional parity budget.
#[derive(Debug, Clone)]
pub struct AdaptiveEcCache {
    k: usize,
    /// Total parity budget as a fraction of raw bytes (paper claim: 0.15).
    budget: f64,
    cost: CodingCostModel,
}

impl AdaptiveEcCache {
    /// An adaptive code with `k` data shards and the given total parity
    /// budget fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `k > 0` and `0 <= budget`.
    pub fn new(k: usize, budget: f64, cost: CodingCostModel) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(budget >= 0.0, "budget must be non-negative");
        AdaptiveEcCache { k, budget, cost }
    }

    /// The paper-claimed configuration: k = 10, 15% total overhead.
    pub fn paper_claim() -> Self {
        AdaptiveEcCache::new(10, 0.15, CodingCostModel::standard())
    }

    /// Parity shards per file: the global budget `budget · Σ bytes`,
    /// divided into shard-sized units and assigned largest-load-first
    /// (each file capped at `k` parity shards — beyond that a wider code
    /// stops paying).
    pub fn parity_allocation(&self, files: &FileSet, n_servers: usize) -> Vec<usize> {
        let mut order: Vec<FileId> = (0..files.len()).collect();
        order.sort_by(|&a, &b| {
            files
                .get(b)
                .load()
                .partial_cmp(&files.get(a).load())
                .expect("no NaN loads")
        });
        let mut budget_bytes = self.budget * files.total_bytes();
        let mut parity = vec![0usize; files.len()];
        // Round-robin over hot files so the budget buys breadth before
        // depth: one parity shard each for the hottest, then a second…
        for round in 0..self.k {
            let mut any = false;
            for &i in &order {
                let shard_bytes = files.get(i).size_bytes / self.k as f64;
                if parity[i] != round {
                    continue; // not yet at this round (ran out earlier)
                }
                if budget_bytes >= shard_bytes
                    && self.k + parity[i] < n_servers
                {
                    budget_bytes -= shard_bytes;
                    parity[i] += 1;
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        parity
    }
}

impl CachingScheme for AdaptiveEcCache {
    fn name(&self) -> String {
        format!("adaptive-ec(k={}, {:.0}%)", self.k, self.budget * 100.0)
    }

    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout {
        assert!(
            self.k <= n_servers,
            "need at least k={} servers",
            self.k
        );
        let parity = self.parity_allocation(files, n_servers);
        let per_file = files
            .iter()
            .map(|(i, meta)| {
                let n = self.k + parity[i];
                let shard = meta.size_bytes / self.k as f64;
                FileLayout {
                    chunks: random_distinct(n, n_servers, rng)
                        .into_iter()
                        .map(|server| Chunk {
                            server,
                            bytes: shard,
                        })
                        .collect(),
                }
            })
            .collect();
        Layout::new(per_file, n_servers)
    }

    fn read_plan(
        &self,
        file: FileId,
        files: &FileSet,
        layout: &Layout,
        rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan {
        let chunks = &layout.file(file).chunks;
        let n = chunks.len();
        // Late binding when parity allows it; a parity-less file is a
        // plain k-way split read (no decode either — systematic code).
        let fetch_count = (self.k + 1).min(n);
        let picked = random_distinct(fetch_count, n, rng);
        let needs_decode = picked.iter().any(|&i| i >= self.k);
        ReadPlan {
            fetches: picked
                .into_iter()
                .map(|i| PlannedFetch {
                    index: i,
                    chunk: chunks[i],
                })
                .collect(),
            wait_for: self.k.min(fetch_count),
            post_cost: if needs_decode {
                self.cost.decode_secs(files.get(file).size_bytes)
            } else {
                0.0
            },
        }
    }

    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan {
        let parity = self.parity_allocation(files, n_servers);
        let size = files.get(file).size_bytes;
        let n = self.k + parity[file];
        let shard = size / self.k as f64;
        WritePlan {
            writes: random_distinct(n.min(n_servers), n_servers, rng)
                .into_iter()
                .map(|server| Chunk {
                    server,
                    bytes: shard,
                })
                .collect(),
            pre_cost: if parity[file] > 0 {
                self.cost.encode_secs(size)
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_workload::zipf::zipf_popularities;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn files() -> FileSet {
        FileSet::uniform_size(100e6, &zipf_popularities(100, 1.1))
    }

    #[test]
    fn budget_is_respected() {
        let f = files();
        let ec = AdaptiveEcCache::paper_claim();
        let mut r = rng(1);
        let layout = ec.build_layout(&f, 30, &mut r);
        let overhead = layout.redundancy(&f);
        assert!(
            overhead <= 0.15 + 1e-9,
            "overhead {overhead} exceeds the 15% budget"
        );
        assert!(overhead > 0.10, "budget should be mostly spent: {overhead}");
    }

    #[test]
    fn hot_files_get_more_parity() {
        let f = files();
        let ec = AdaptiveEcCache::paper_claim();
        let parity = ec.parity_allocation(&f, 30);
        // 15% of 100 uniform files buys 150 shard-units: breadth gives
        // every file one, the remainder deepens the hot head.
        assert!(parity[0] >= parity[50], "{:?}", &parity[..10]);
        assert!(parity[0] >= 2, "hottest file should get extra parity");
        assert!(parity[99] <= 1, "coldest file gets at most the breadth share");
    }

    #[test]
    fn breadth_before_depth() {
        // With a tight budget, many files get 1 parity shard before any
        // file gets 2.
        let f = files();
        let ec = AdaptiveEcCache::new(10, 0.05, CodingCostModel::standard());
        let parity = ec.parity_allocation(&f, 30);
        let max = *parity.iter().max().unwrap();
        let with_one = parity.iter().filter(|&&p| p >= 1).count();
        assert!(max <= 2);
        assert!(with_one >= 3);
    }

    #[test]
    fn parity_less_files_read_without_decode() {
        let f = files();
        // A tight 2% budget: only the hot head gets parity.
        let ec = AdaptiveEcCache::new(10, 0.02, CodingCostModel::standard());
        let mut r = rng(2);
        let layout = ec.build_layout(&f, 30, &mut r);
        // The coldest file has no parity: k fetches, wait k, no decode.
        let plan = ec.read_plan(99, &f, &layout, &mut r);
        assert_eq!(plan.fetches.len(), 10);
        assert_eq!(plan.wait_for, 10);
        assert_eq!(plan.post_cost, 0.0);
    }

    #[test]
    fn hot_files_late_bind_and_decode() {
        let f = files();
        let ec = AdaptiveEcCache::paper_claim();
        let mut r = rng(3);
        let layout = ec.build_layout(&f, 30, &mut r);
        let plan = ec.read_plan(0, &f, &layout, &mut r);
        assert_eq!(plan.fetches.len(), 11);
        assert_eq!(plan.wait_for, 10);
        plan.validate();
    }

    #[test]
    fn zero_budget_degenerates_to_simple_partition() {
        let f = files();
        let ec = AdaptiveEcCache::new(10, 0.0, CodingCostModel::standard());
        let mut r = rng(4);
        let layout = ec.build_layout(&f, 30, &mut r);
        assert!(layout.redundancy(&f).abs() < 1e-9);
        let plan = ec.read_plan(0, &f, &layout, &mut r);
        assert_eq!(plan.post_cost, 0.0);
    }

    #[test]
    fn write_encodes_only_with_parity() {
        let f = files();
        let ec = AdaptiveEcCache::new(10, 0.02, CodingCostModel::standard());
        let mut r = rng(5);
        let hot = ec.write_plan(0, &f, 30, &mut r);
        let cold = ec.write_plan(99, &f, 30, &mut r);
        assert!(hot.pre_cost > 0.0);
        assert!(hot.writes.len() > 10);
        assert_eq!(cold.pre_cost, 0.0);
        assert_eq!(cold.writes.len(), 10);
    }
}

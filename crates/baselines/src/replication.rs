//! Selective replication (Scarlett, EuroSys'11 — the paper's §3.1
//! baseline).
//!
//! The top `top_fraction` most popular files get `replicas` full copies on
//! distinct random servers; everything else is cached once. A read picks
//! one copy uniformly at random (whole-file transfer from one server); a
//! write pushes every replica. The paper's configuration — top 10% × 4
//! replicas — costs the same 40% memory overhead as (10,14) EC-Cache.

use spcache_core::file::{FileId, FileSet};
use spcache_core::placement::random_distinct;
use spcache_core::scheme::{CachingScheme, Chunk, FileLayout, Layout, ReadPlan, WritePlan};
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::dist::uniform_usize;

/// The selective-replication scheme.
#[derive(Debug, Clone)]
pub struct SelectiveReplication {
    top_fraction: f64,
    replicas: usize,
}

impl SelectiveReplication {
    /// Replicates the `top_fraction` hottest files `replicas` times.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= top_fraction <= 1` and `replicas >= 1`.
    pub fn new(top_fraction: f64, replicas: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&top_fraction),
            "top_fraction must be a fraction"
        );
        assert!(replicas >= 1, "need at least one copy");
        SelectiveReplication {
            top_fraction,
            replicas,
        }
    }

    /// The paper's configuration: top 10%, 4 replicas (40% overhead under
    /// equal file sizes).
    pub fn paper_config() -> Self {
        SelectiveReplication::new(0.10, 4)
    }

    /// Replica count for one file given its popularity rank among `n`
    /// files (rank 0 = hottest).
    fn replicas_for_rank(&self, rank: usize, n_files: usize) -> usize {
        let cutoff = (self.top_fraction * n_files as f64).ceil() as usize;
        if rank < cutoff {
            self.replicas
        } else {
            1
        }
    }

    /// Popularity ranks (0 = hottest) for a file set.
    fn ranks(files: &FileSet) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..files.len()).collect();
        idx.sort_by(|&a, &b| {
            files
                .get(b)
                .popularity
                .partial_cmp(&files.get(a).popularity)
                .expect("no NaN popularity")
        });
        let mut rank = vec![0usize; files.len()];
        for (r, &i) in idx.iter().enumerate() {
            rank[i] = r;
        }
        rank
    }
}

impl CachingScheme for SelectiveReplication {
    fn name(&self) -> String {
        format!(
            "selective-replication(top {:.0}% × {})",
            self.top_fraction * 100.0,
            self.replicas
        )
    }

    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout {
        let ranks = Self::ranks(files);
        let per_file = files
            .iter()
            .map(|(i, meta)| {
                let copies = self.replicas_for_rank(ranks[i], files.len()).min(n_servers);
                let servers = random_distinct(copies, n_servers, rng);
                FileLayout {
                    chunks: servers
                        .into_iter()
                        .map(|server| Chunk {
                            server,
                            bytes: meta.size_bytes,
                        })
                        .collect(),
                }
            })
            .collect();
        Layout::new(per_file, n_servers)
    }

    fn read_plan(
        &self,
        file: FileId,
        _files: &FileSet,
        layout: &Layout,
        rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan {
        let chunks = &layout.file(file).chunks;
        let pick = uniform_usize(rng, chunks.len());
        ReadPlan {
            fetches: vec![spcache_core::scheme::PlannedFetch {
                index: pick,
                chunk: chunks[pick],
            }],
            wait_for: 1,
            post_cost: 0.0,
        }
    }

    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan {
        let ranks = Self::ranks(files);
        let copies = self.replicas_for_rank(ranks[file], files.len()).min(n_servers);
        let servers = random_distinct(copies, n_servers, rng);
        let size = files.get(file).size_bytes;
        WritePlan {
            writes: servers
                .into_iter()
                .map(|server| Chunk {
                    server,
                    bytes: size,
                })
                .collect(),
            pre_cost: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_workload::zipf::zipf_popularities;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn files() -> FileSet {
        FileSet::uniform_size(100e6, &zipf_popularities(100, 1.05))
    }

    #[test]
    fn overhead_matches_paper_40_percent() {
        let f = files();
        let sr = SelectiveReplication::paper_config();
        let mut r = rng(1);
        let layout = sr.build_layout(&f, 30, &mut r);
        // top 10% of 100 files × 3 extra copies × equal size = +30%... the
        // paper counts 10% × 4 copies = 40% of the *cache*, i.e. redundancy
        // 10% × (4-1) = 30% of raw bytes. Assert the layout's arithmetic.
        assert!((layout.redundancy(&f) - 0.30).abs() < 1e-9);
        // Hot file cached 4x, cold 1x.
        assert_eq!(layout.file(0).chunks.len(), 4);
        assert_eq!(layout.file(99).chunks.len(), 1);
    }

    #[test]
    fn read_fetches_exactly_one_whole_copy() {
        let f = files();
        let sr = SelectiveReplication::paper_config();
        let mut r = rng(2);
        let layout = sr.build_layout(&f, 30, &mut r);
        let plan = sr.read_plan(0, &f, &layout, &mut r);
        plan.validate();
        assert_eq!(plan.fetches.len(), 1);
        assert_eq!(plan.fetches[0].chunk.bytes, 100e6);
        assert_eq!(plan.post_cost, 0.0);
    }

    #[test]
    fn reads_spread_across_replicas() {
        let f = files();
        let sr = SelectiveReplication::paper_config();
        let mut r = rng(3);
        let layout = sr.build_layout(&f, 30, &mut r);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let plan = sr.read_plan(0, &f, &layout, &mut r);
            seen.insert(plan.fetches[0].chunk.server);
        }
        assert_eq!(seen.len(), 4, "all four replicas should serve reads");
    }

    #[test]
    fn ranks_follow_popularity_not_index() {
        // Shuffle popularity so index != rank.
        let pops = vec![0.1, 0.5, 0.05, 0.35];
        let f = FileSet::uniform_size(10e6, &pops);
        let sr = SelectiveReplication::new(0.25, 3);
        let mut r = rng(4);
        let layout = sr.build_layout(&f, 10, &mut r);
        // Only file 1 (the hottest) is in the top 25%.
        assert_eq!(layout.file(1).chunks.len(), 3);
        for i in [0usize, 2, 3] {
            assert_eq!(layout.file(i).chunks.len(), 1, "file {i}");
        }
    }

    #[test]
    fn write_pushes_all_replicas() {
        let f = files();
        let sr = SelectiveReplication::paper_config();
        let mut r = rng(5);
        let hot = sr.write_plan(0, &f, 30, &mut r);
        let cold = sr.write_plan(99, &f, 30, &mut r);
        assert_eq!(hot.writes.len(), 4);
        assert!((hot.total_bytes() - 400e6).abs() < 1.0);
        assert_eq!(cold.writes.len(), 1);
    }

    #[test]
    fn replicas_capped_by_cluster_size() {
        let f = FileSet::uniform_size(1e6, &[0.9, 0.1]);
        let sr = SelectiveReplication::new(1.0, 10);
        let mut r = rng(6);
        let layout = sr.build_layout(&f, 3, &mut r);
        assert_eq!(layout.file(0).chunks.len(), 3);
    }

    #[test]
    fn replication_factor_one_is_plain_caching() {
        let f = files();
        let sr = SelectiveReplication::new(0.1, 1);
        let mut r = rng(7);
        let layout = sr.build_layout(&f, 30, &mut r);
        assert!(layout.redundancy(&f).abs() < 1e-9);
    }
}

//! Simple (uniform) partition — the §4 strawman.
//!
//! Every file is split into the same `k` partitions on distinct random
//! servers, regardless of size or popularity. It inherits partition's load
//! spreading and read parallelism but wastes parallelism on cold files
//! (network overhead, incast) and cannot give hot files *extra* spreading
//! — exactly the trade-off Fig. 5 exposes.

use spcache_core::file::{FileId, FileSet};
use spcache_core::placement::random_distinct;
use spcache_core::scheme::{CachingScheme, Chunk, FileLayout, Layout, ReadPlan, WritePlan};
use spcache_sim::Xoshiro256StarStar;

/// Uniform `k`-way partition for every file.
#[derive(Debug, Clone)]
pub struct SimplePartition {
    k: usize,
}

impl SimplePartition {
    /// Splits every file into `k` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        SimplePartition { k }
    }

    /// The uniform partition count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl CachingScheme for SimplePartition {
    fn name(&self) -> String {
        format!("simple-partition(k={})", self.k)
    }

    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout {
        let k = self.k.min(n_servers);
        let per_file = files
            .iter()
            .map(|(_, meta)| {
                let part = meta.size_bytes / k as f64;
                FileLayout {
                    chunks: random_distinct(k, n_servers, rng)
                        .into_iter()
                        .map(|server| Chunk {
                            server,
                            bytes: part,
                        })
                        .collect(),
                }
            })
            .collect();
        Layout::new(per_file, n_servers)
    }

    fn read_plan(
        &self,
        file: FileId,
        _files: &FileSet,
        layout: &Layout,
        _rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan {
        ReadPlan::all_of(&layout.file(file).chunks)
    }

    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan {
        let k = self.k.min(n_servers);
        let part = files.get(file).size_bytes / k as f64;
        WritePlan {
            writes: random_distinct(k, n_servers, rng)
                .into_iter()
                .map(|server| Chunk {
                    server,
                    bytes: part,
                })
                .collect(),
            pre_cost: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_workload::zipf::zipf_popularities;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn every_file_gets_k_partitions() {
        let f = FileSet::uniform_size(40e6, &zipf_popularities(50, 1.1));
        let sp = SimplePartition::new(9);
        let mut r = rng(1);
        let layout = sp.build_layout(&f, 30, &mut r);
        for i in 0..50 {
            assert_eq!(layout.file(i).chunks.len(), 9);
        }
        assert!(layout.redundancy(&f).abs() < 1e-9);
    }

    #[test]
    fn k_clamped_to_cluster() {
        let f = FileSet::uniform_size(40e6, &[1.0]);
        let sp = SimplePartition::new(100);
        let mut r = rng(2);
        let layout = sp.build_layout(&f, 8, &mut r);
        assert_eq!(layout.file(0).chunks.len(), 8);
    }

    #[test]
    fn read_is_full_fork_join() {
        let f = FileSet::uniform_size(40e6, &[0.7, 0.3]);
        let sp = SimplePartition::new(3);
        let mut r = rng(3);
        let layout = sp.build_layout(&f, 10, &mut r);
        let plan = sp.read_plan(1, &f, &layout, &mut r);
        plan.validate();
        assert_eq!(plan.fetches.len(), 3);
        assert_eq!(plan.wait_for, 3);
        assert_eq!(plan.post_cost, 0.0);
    }

    #[test]
    fn k1_degenerates_to_whole_file_caching() {
        let f = FileSet::uniform_size(40e6, &[1.0]);
        let sp = SimplePartition::new(1);
        let mut r = rng(4);
        let layout = sp.build_layout(&f, 5, &mut r);
        assert_eq!(layout.file(0).chunks.len(), 1);
        assert_eq!(layout.file(0).chunks[0].bytes, 40e6);
    }

    #[test]
    fn write_splits_without_redundancy() {
        let f = FileSet::uniform_size(40e6, &[1.0]);
        let sp = SimplePartition::new(4);
        let mut r = rng(5);
        let plan = sp.write_plan(0, &f, 10, &mut r);
        assert_eq!(plan.writes.len(), 4);
        assert!((plan.total_bytes() - 40e6).abs() < 1.0);
        assert_eq!(plan.pre_cost, 0.0);
    }
}

#![warn(missing_docs)]

//! Baseline caching schemes the paper compares SP-Cache against.
//!
//! All four implement [`spcache_core::scheme::CachingScheme`], so the
//! simulator and the real store drive them through the same interface:
//!
//! * [`ec_cache::EcCache`] — EC-Cache (Rashmi et al., OSDI'16): each file
//!   stored as a `(k, n)` systematic Reed–Solomon code across `n` distinct
//!   servers; reads *late-bind* by fetching `k + 1` random shards and
//!   completing on the first `k`; decode costs CPU time proportional to
//!   the file size. The paper's configuration is (10, 14) — 40% memory
//!   overhead.
//! * [`replication::SelectiveReplication`] — Scarlett-style: the top
//!   `top_fraction` popular files get `replicas` full copies; a read picks
//!   one copy at random. The paper's configuration replicates the top 10%
//!   four ways — also 40% overhead.
//! * [`simple_partition::SimplePartition`] — the §4 strawman: *every*
//!   file split into the same `k` partitions, read fork-join style.
//! * [`chunking::FixedChunking`] — §4.3/§7.3: files split into fixed-size
//!   chunks (4/8/16 MB in the paper), so `k` varies with file size but not
//!   popularity.

pub mod adaptive_ec;
pub mod chunking;
pub mod cost;
pub mod ec_cache;
pub mod replication;
pub mod simple_partition;

pub use adaptive_ec::AdaptiveEcCache;
pub use chunking::FixedChunking;
pub use cost::CodingCostModel;
pub use ec_cache::EcCache;
pub use replication::SelectiveReplication;
pub use simple_partition::SimplePartition;

//! CPU cost model for erasure encode/decode.
//!
//! EC-Cache's Achilles heel (§3.2): even with ISA-L, decoding delays reads
//! by 15–30% for files ≥ 100 MB. The cost is linear in the bytes
//! processed, so a throughput model captures it. The default throughputs
//! are calibrated to our own `spcache-ec` codec measured on one core
//! (same order as the paper's observed overhead at 1 Gbps); the `fig15`
//! experiment raises them to model compute-optimized instances.

/// Linear-throughput encode/decode cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingCostModel {
    /// Decode throughput in bytes/s of *reconstructed* data.
    pub decode_bytes_per_sec: f64,
    /// Encode throughput in bytes/s of *source* data.
    pub encode_bytes_per_sec: f64,
}

impl CodingCostModel {
    /// Calibrated to a single r3.2xlarge-class core running a table-driven
    /// GF(2⁸) RS codec: ~0.6 GB/s decode, ~0.9 GB/s encode. At 1 Gbps
    /// (125 MB/s) network this yields the paper's ~20% decode overhead for
    /// 100 MB files.
    pub fn standard() -> Self {
        CodingCostModel {
            decode_bytes_per_sec: 0.6e9,
            encode_bytes_per_sec: 0.9e9,
        }
    }

    /// Compute-optimized instances (c4.4xlarge, AVX2 + Turbo Boost):
    /// roughly 2.5× the standard throughput.
    pub fn compute_optimized() -> Self {
        CodingCostModel {
            decode_bytes_per_sec: 1.5e9,
            encode_bytes_per_sec: 2.25e9,
        }
    }

    /// A model with no coding cost at all ("coding-free" ablation).
    pub fn free() -> Self {
        CodingCostModel {
            decode_bytes_per_sec: f64::INFINITY,
            encode_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Seconds to decode a file of `bytes`.
    pub fn decode_secs(&self, bytes: f64) -> f64 {
        if self.decode_bytes_per_sec.is_infinite() {
            0.0
        } else {
            bytes / self.decode_bytes_per_sec
        }
    }

    /// Seconds to encode a file of `bytes`.
    pub fn encode_secs(&self, bytes: f64) -> f64 {
        if self.encode_bytes_per_sec.is_infinite() {
            0.0
        } else {
            bytes / self.encode_bytes_per_sec
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_linear_in_bytes() {
        let m = CodingCostModel::standard();
        assert!((m.decode_secs(2e8) / m.decode_secs(1e8) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn standard_overhead_matches_paper_band() {
        // 100 MB at 1 Gbps transfers in ~0.8 s (over 10 partitions the
        // transfer itself parallelizes, but the *decode* stays whole-file).
        // Decode of 100 MB at 0.6 GB/s is ~0.167 s → 15-25% of a ~0.8 s
        // read, matching Fig. 4's band for large files.
        let m = CodingCostModel::standard();
        let transfer = 100e6 / 125e6;
        let overhead = m.decode_secs(100e6) / transfer;
        assert!(
            (0.1..=0.3).contains(&overhead),
            "decode overhead {overhead} outside the paper's band"
        );
    }

    #[test]
    fn compute_optimized_is_faster() {
        let s = CodingCostModel::standard();
        let c = CodingCostModel::compute_optimized();
        assert!(c.decode_secs(1e8) < s.decode_secs(1e8));
        assert!(c.encode_secs(1e8) < s.encode_secs(1e8));
    }

    #[test]
    fn free_model_is_zero() {
        let f = CodingCostModel::free();
        assert_eq!(f.decode_secs(1e9), 0.0);
        assert_eq!(f.encode_secs(1e9), 0.0);
    }
}

//! Fixed-size chunking (§4.3, §7.3) — the HDFS/Azure/Alluxio default.
//!
//! Files are split into chunks of a pre-specified size (the paper tests
//! 4/8/16 MB against Alluxio's 512 MB default), so the partition count
//! follows the file *size* but ignores *popularity*: big chunks can't
//! dissolve hot spots, small chunks drown every read in connections.

use spcache_core::file::{FileId, FileSet};
use spcache_core::placement::random_distinct;
use spcache_core::scheme::{CachingScheme, Chunk, FileLayout, Layout, ReadPlan, WritePlan};
use spcache_sim::Xoshiro256StarStar;

/// Fixed-size chunking with the given chunk size in bytes.
#[derive(Debug, Clone)]
pub struct FixedChunking {
    chunk_bytes: f64,
}

impl FixedChunking {
    /// Chunking with `chunk_bytes` per chunk.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_bytes > 0`.
    pub fn new(chunk_bytes: f64) -> Self {
        assert!(chunk_bytes > 0.0, "chunk size must be positive");
        FixedChunking { chunk_bytes }
    }

    /// Convenience constructor in megabytes (the paper's 4/8/16 MB).
    pub fn megabytes(mb: f64) -> Self {
        FixedChunking::new(mb * 1e6)
    }

    /// Chunk count for a file of `size` bytes on an `n_servers` cluster:
    /// `ceil(size / chunk)`, clamped to the cluster size (chunks beyond
    /// that would share servers, which changes nothing for load balance).
    pub fn chunks_for(&self, size: f64, n_servers: usize) -> usize {
        ((size / self.chunk_bytes).ceil() as usize).clamp(1, n_servers)
    }
}

impl CachingScheme for FixedChunking {
    fn name(&self) -> String {
        format!("fixed-chunking({:.0}MB)", self.chunk_bytes / 1e6)
    }

    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout {
        let per_file = files
            .iter()
            .map(|(_, meta)| {
                let k = self.chunks_for(meta.size_bytes, n_servers);
                let part = meta.size_bytes / k as f64;
                FileLayout {
                    chunks: random_distinct(k, n_servers, rng)
                        .into_iter()
                        .map(|server| Chunk {
                            server,
                            bytes: part,
                        })
                        .collect(),
                }
            })
            .collect();
        Layout::new(per_file, n_servers)
    }

    fn read_plan(
        &self,
        file: FileId,
        _files: &FileSet,
        layout: &Layout,
        _rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan {
        ReadPlan::all_of(&layout.file(file).chunks)
    }

    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan {
        let size = files.get(file).size_bytes;
        let k = self.chunks_for(size, n_servers);
        let part = size / k as f64;
        WritePlan {
            writes: random_distinct(k, n_servers, rng)
                .into_iter()
                .map(|server| Chunk {
                    server,
                    bytes: part,
                })
                .collect(),
            pre_cost: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn chunk_count_follows_size_only() {
        let c = FixedChunking::megabytes(8.0);
        assert_eq!(c.chunks_for(100e6, 30), 13); // ceil(100/8)
        assert_eq!(c.chunks_for(8e6, 30), 1);
        assert_eq!(c.chunks_for(7.9e6, 30), 1);
        assert_eq!(c.chunks_for(8.1e6, 30), 2);
    }

    #[test]
    fn large_chunks_mean_no_splitting() {
        // Alluxio's 512 MB default on 100 MB files: one chunk each, no
        // load balancing at all (the paper's point).
        let c = FixedChunking::megabytes(512.0);
        let f = FileSet::uniform_size(100e6, &[0.9, 0.1]);
        let mut r = rng(1);
        let layout = c.build_layout(&f, 30, &mut r);
        assert_eq!(layout.file(0).chunks.len(), 1);
    }

    #[test]
    fn count_clamped_to_cluster() {
        let c = FixedChunking::megabytes(1.0);
        assert_eq!(c.chunks_for(1e9, 30), 30);
    }

    #[test]
    fn popularity_is_ignored() {
        let c = FixedChunking::megabytes(4.0);
        let f = FileSet::uniform_size(100e6, &[0.99, 0.01]);
        let mut r = rng(2);
        let layout = c.build_layout(&f, 30, &mut r);
        assert_eq!(
            layout.file(0).chunks.len(),
            layout.file(1).chunks.len(),
            "hot and cold files must chunk identically"
        );
    }

    #[test]
    fn layout_redundancy_free() {
        let c = FixedChunking::megabytes(4.0);
        let f = FileSet::uniform_size(100e6, &[0.6, 0.4]);
        let mut r = rng(3);
        let layout = c.build_layout(&f, 30, &mut r);
        assert!(layout.redundancy(&f).abs() < 1e-9);
    }

    #[test]
    fn write_mirrors_layout_shape() {
        let c = FixedChunking::megabytes(16.0);
        let f = FileSet::uniform_size(100e6, &[1.0]);
        let mut r = rng(4);
        let plan = c.write_plan(0, &f, 30, &mut r);
        assert_eq!(plan.writes.len(), 7); // ceil(100/16)
        assert!((plan.total_bytes() - 100e6).abs() < 1.0);
    }
}

//! EC-Cache (Rashmi et al., OSDI'16).
//!
//! Every file is stored as a systematic `(k, n)` Reed–Solomon code: `n`
//! equal shards of `S/k` bytes on distinct random servers, `n − k` of them
//! parity. A read fetches `k + 1` randomly chosen shards (late binding)
//! and completes when any `k` arrive, then pays a decode cost. A write
//! pays the encode cost and pushes all `n` shards. The paper (and our
//! Fig. 13/19 experiments) uses the uniform (10, 14) configuration —
//! 40% memory overhead.

use spcache_core::file::{FileId, FileSet};
use spcache_core::placement::random_distinct;
use spcache_core::scheme::{CachingScheme, Chunk, FileLayout, Layout, ReadPlan, WritePlan};
use spcache_sim::Xoshiro256StarStar;

use crate::cost::CodingCostModel;

/// The EC-Cache scheme.
#[derive(Debug, Clone)]
pub struct EcCache {
    k: usize,
    n: usize,
    late_binding: bool,
    cost: CodingCostModel,
}

impl EcCache {
    /// A `(k, n)` EC-Cache with late binding and the given cost model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k <= n`.
    pub fn new(k: usize, n: usize, cost: CodingCostModel) -> Self {
        assert!(k > 0 && n >= k, "invalid (k, n) code");
        EcCache {
            k,
            n,
            late_binding: true,
            cost,
        }
    }

    /// The paper's configuration: (10, 14) with the standard cost model.
    pub fn paper_config() -> Self {
        EcCache::new(10, 14, CodingCostModel::standard())
    }

    /// Disables late binding (ablation: read exactly `k` shards).
    pub fn without_late_binding(mut self) -> Self {
        self.late_binding = false;
        self
    }

    /// Data-shard count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total shard count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Memory overhead `(n − k)/k`.
    pub fn overhead(&self) -> f64 {
        (self.n - self.k) as f64 / self.k as f64
    }
}

impl CachingScheme for EcCache {
    fn name(&self) -> String {
        format!(
            "ec-cache({},{}){}",
            self.k,
            self.n,
            if self.late_binding { "" } else { "-no-lb" }
        )
    }

    fn build_layout(
        &self,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> Layout {
        assert!(
            self.n <= n_servers,
            "need at least n={} servers for distinct shard placement",
            self.n
        );
        let per_file = files
            .iter()
            .map(|(_, meta)| {
                let shard = meta.size_bytes / self.k as f64;
                let servers = random_distinct(self.n, n_servers, rng);
                FileLayout {
                    chunks: servers
                        .into_iter()
                        .map(|server| Chunk {
                            server,
                            bytes: shard,
                        })
                        .collect(),
                }
            })
            .collect();
        Layout::new(per_file, n_servers)
    }

    fn read_plan(
        &self,
        file: FileId,
        files: &FileSet,
        layout: &Layout,
        rng: &mut Xoshiro256StarStar,
    ) -> ReadPlan {
        let chunks = &layout.file(file).chunks;
        let fetch_count = if self.late_binding {
            (self.k + 1).min(chunks.len())
        } else {
            self.k.min(chunks.len())
        };
        // Randomly choose which shards to read (paper: "randomly fetches
        // k+1 partitions"). Fetches carry the shard's stable index so
        // cache-hit accounting recognizes the same shard across reads.
        let picked = random_distinct(fetch_count, chunks.len(), rng);
        ReadPlan {
            fetches: picked
                .into_iter()
                .map(|i| spcache_core::scheme::PlannedFetch {
                    index: i,
                    chunk: chunks[i],
                })
                .collect(),
            wait_for: self.k.min(fetch_count),
            post_cost: self.cost.decode_secs(files.get(file).size_bytes),
        }
    }

    fn write_plan(
        &self,
        file: FileId,
        files: &FileSet,
        n_servers: usize,
        rng: &mut Xoshiro256StarStar,
    ) -> WritePlan {
        let size = files.get(file).size_bytes;
        let shard = size / self.k as f64;
        let servers = random_distinct(self.n.min(n_servers), n_servers, rng);
        WritePlan {
            writes: servers
                .into_iter()
                .map(|server| Chunk {
                    server,
                    bytes: shard,
                })
                .collect(),
            pre_cost: self.cost.encode_secs(size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spcache_workload::zipf::zipf_popularities;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn files() -> FileSet {
        FileSet::uniform_size(100e6, &zipf_popularities(50, 1.05))
    }

    #[test]
    fn layout_has_40_percent_overhead() {
        let f = files();
        let ec = EcCache::paper_config();
        let mut r = rng(1);
        let layout = ec.build_layout(&f, 30, &mut r);
        assert!((layout.redundancy(&f) - 0.4).abs() < 1e-9);
        assert_eq!(layout.file(0).chunks.len(), 14);
    }

    #[test]
    fn shards_on_distinct_servers() {
        let f = files();
        let ec = EcCache::paper_config();
        let mut r = rng(2);
        let layout = ec.build_layout(&f, 30, &mut r);
        for i in 0..f.len() {
            let mut servers: Vec<usize> =
                layout.file(i).chunks.iter().map(|c| c.server).collect();
            servers.sort_unstable();
            servers.dedup();
            assert_eq!(servers.len(), 14, "file {i} shard servers not distinct");
        }
    }

    #[test]
    fn late_binding_reads_k_plus_1_waits_k() {
        let f = files();
        let ec = EcCache::paper_config();
        let mut r = rng(3);
        let layout = ec.build_layout(&f, 30, &mut r);
        let plan = ec.read_plan(0, &f, &layout, &mut r);
        plan.validate();
        assert_eq!(plan.fetches.len(), 11);
        assert_eq!(plan.wait_for, 10);
        assert!(plan.post_cost > 0.0, "decode must cost CPU time");
    }

    #[test]
    fn no_late_binding_reads_exactly_k() {
        let f = files();
        let ec = EcCache::paper_config().without_late_binding();
        let mut r = rng(4);
        let layout = ec.build_layout(&f, 30, &mut r);
        let plan = ec.read_plan(0, &f, &layout, &mut r);
        assert_eq!(plan.fetches.len(), 10);
        assert_eq!(plan.wait_for, 10);
    }

    #[test]
    fn decode_cost_grows_with_file_size() {
        let sizes = [10e6, 100e6, 500e6];
        let pops = [0.4, 0.3, 0.3];
        let f = FileSet::from_parts(&sizes, &pops);
        let ec = EcCache::paper_config();
        let mut r = rng(5);
        let layout = ec.build_layout(&f, 30, &mut r);
        let costs: Vec<f64> = (0..3)
            .map(|i| ec.read_plan(i, &f, &layout, &mut r).post_cost)
            .collect();
        assert!(costs[0] < costs[1] && costs[1] < costs[2]);
    }

    #[test]
    fn write_pushes_n_shards_with_encode_cost() {
        let f = files();
        let ec = EcCache::paper_config();
        let mut r = rng(6);
        let plan = ec.write_plan(0, &f, 30, &mut r);
        assert_eq!(plan.writes.len(), 14);
        assert!((plan.total_bytes() - 140e6).abs() < 1.0);
        assert!(plan.pre_cost > 0.0);
    }

    #[test]
    fn coding_free_mode_has_no_cost() {
        let f = files();
        let ec = EcCache::new(10, 10, CodingCostModel::free());
        let mut r = rng(7);
        let layout = ec.build_layout(&f, 30, &mut r);
        assert!(layout.redundancy(&f).abs() < 1e-9);
        let plan = ec.read_plan(0, &f, &layout, &mut r);
        assert_eq!(plan.post_cost, 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_servers_rejected() {
        let f = files();
        let ec = EcCache::paper_config();
        let mut r = rng(8);
        let _ = ec.build_layout(&f, 10, &mut r);
    }
}

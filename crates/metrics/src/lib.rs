#![warn(missing_docs)]

//! Statistics for SP-Cache experiments.
//!
//! Every number the paper reports is produced by one of these primitives:
//!
//! * [`summary::Summary`] — streaming mean / variance / coefficient of
//!   variation (Welford's algorithm), used for every "mean latency" and
//!   "CV" row (Tables 1–3),
//! * [`percentile::Samples`] — exact percentiles from retained samples
//!   (the tail-latency curves) and [`percentile::P2Quantile`], a constant
//!   memory streaming estimator for long simulations,
//! * [`histogram::LogHistogram`] — log-bucketed latency histogram with CDF
//!   export (Fig. 21's latency distributions),
//! * [`imbalance::LoadTracker`] — per-server byte accounting and the
//!   imbalance factor `η = (L_max − L_avg)/L_avg` (Eq. 15, Figs. 12/18).

pub mod histogram;
pub mod imbalance;
pub mod percentile;
pub mod summary;
pub mod window;

pub use histogram::LogHistogram;
pub use imbalance::LoadTracker;
pub use percentile::{P2Quantile, Samples};
pub use summary::Summary;
pub use window::WindowedStats;

//! Percentile estimation: exact (retained samples) and streaming (P²).

use serde::{Deserialize, Serialize};

/// A bag of retained samples with exact percentile queries.
///
/// The paper's tail-latency numbers are 95th percentiles over all reads in
/// a run; run sizes here are at most a few million, so retaining samples is
/// cheap and exact.
///
/// # Examples
///
/// ```
/// use spcache_metrics::Samples;
///
/// let mut s = Samples::new();
/// for i in 1..=100 {
///     s.record(i as f64);
/// }
/// assert_eq!(s.percentile(50.0), 50.5); // interpolated median of 1..=100
/// assert_eq!(s.percentile(100.0), 100.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample bag.
    pub fn new() -> Self {
        Samples {
            data: Vec::new(),
            sorted: true,
        }
    }

    /// Pre-allocates for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Samples {
            data: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Builds from a vector of samples.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Samples {
            data,
            sorted: false,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.data.push(x);
        self.sorted = false;
    }

    /// Appends all samples from `other`.
    pub fn extend_from(&mut self, other: &Samples) {
        self.data.extend_from_slice(&other.data);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.data
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// Exact `p`-th percentile (`0 ≤ p ≤ 100`) using nearest-rank with
    /// linear interpolation; 0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.data.len();
        if n == 1 {
            return self.data[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.data[lo] * (1.0 - frac) + self.data[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// The empirical CDF as `(value, fraction ≤ value)` pairs at `points`
    /// evenly spaced quantiles (for plotting Fig. 21-style distributions).
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        if self.data.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.data.len();
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                let idx = ((q * (n - 1) as f64).round() as usize).min(n - 1);
                (self.data[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }

    /// Immutable view of the raw samples (unsorted order not guaranteed).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// The P² (Jain & Chlamtac 1985) streaming quantile estimator: O(1) memory,
/// one quantile per instance. Used where a simulation is too long to retain
/// every latency sample.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    inc: [f64; 5],
    count: usize,
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            inc: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                for (h, v) in self.heights.iter_mut().zip(&self.init) {
                    *h = *v;
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            2
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.pos.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, i) in self.desired.iter_mut().zip(&self.inc) {
            *d += i;
        }

        // Adjust interior markers with the parabolic (P²) formula, falling
        // back to linear when the parabolic estimate leaves the bracket.
        for i in 1..4 {
            let d = self.desired[i] - self.pos[i];
            let right = self.pos[i + 1] - self.pos[i];
            let left = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let hp = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < hp && hp < self.heights[i + 1] {
                    hp
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.pos[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.pos;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate of the quantile; exact for fewer than five samples.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.init.len() < 5 {
            // Exact small-sample quantile.
            let mut v = self.init.clone();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let rank = (self.q * (v.len() - 1) as f64).round() as usize;
            return v[rank];
        }
        self.heights[2]
    }

    /// Number of observations recorded.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentiles_small() {
        let mut s = Samples::from_vec(vec![3.0, 1.0, 2.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.percentile(100.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let mut s = Samples::from_vec(vec![0.0, 10.0]);
        assert_eq!(s.percentile(50.0), 5.0);
        assert_eq!(s.percentile(25.0), 2.5);
    }

    #[test]
    fn empty_samples_return_zero() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(95.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
        assert!(s.cdf(4).is_empty());
    }

    #[test]
    fn record_after_query_resorts() {
        let mut s = Samples::new();
        s.record(5.0);
        assert_eq!(s.median(), 5.0);
        s.record(1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn extend_merges() {
        let mut a = Samples::from_vec(vec![1.0, 2.0]);
        let b = Samples::from_vec(vec![3.0, 4.0]);
        a.extend_from(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.percentile(100.0), 4.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut s = Samples::from_vec((0..1000).map(|i| (i as f64).sqrt()).collect());
        let cdf = s.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be non-decreasing");
            assert!(w[0].1 <= w[1].1, "probabilities must be non-decreasing");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn p2_matches_exact_on_uniform() {
        let mut est = P2Quantile::new(0.95);
        let mut exact = Samples::new();
        // Deterministic pseudo-uniform sequence.
        let mut x = 0.5f64;
        for _ in 0..20_000 {
            x = (x * 1103515245.0 + 12345.0) % 1.0;
            let v = x.abs();
            est.record(v);
            exact.record(v);
        }
        let e = exact.percentile(95.0);
        assert!(
            (est.value() - e).abs() < 0.02,
            "p2 = {}, exact = {}",
            est.value(),
            e
        );
    }

    #[test]
    fn p2_small_sample_is_exact() {
        let mut est = P2Quantile::new(0.5);
        est.record(10.0);
        est.record(20.0);
        est.record(30.0);
        assert_eq!(est.value(), 20.0);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn p2_handles_heavy_tail() {
        let mut est = P2Quantile::new(0.5);
        let mut exact = Samples::new();
        for i in 1..10_000usize {
            // Pareto-ish: occasional large values.
            let v = if i % 100 == 0 { 1000.0 } else { (i % 17) as f64 };
            est.record(v);
            exact.record(v);
        }
        let e = exact.median();
        assert!(
            (est.value() - e).abs() <= 2.0,
            "p2 median {} vs exact {}",
            est.value(),
            e
        );
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn p2_rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}

//! Streaming summary statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean / variance / extrema.
///
/// Used for every "mean read latency" point and every coefficient-of-
/// variation (CV) entry in the paper's Tables 1–3. The CV — standard
/// deviation over mean — is the paper's hot-spot indicator: CV > 1 means
/// severe load imbalance.
///
/// # Examples
///
/// ```
/// use spcache_metrics::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.record(x);
        }
        s
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel reduction), using the
    /// Chan et al. pairwise update.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by n); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation `σ/μ` — the paper's hot-spot indicator
    /// (CV > 1 ⇒ severe hot spots). Returns 0 for an empty or zero-mean
    /// summary.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.record(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let (a, b) = xs.split_at(200);
        let mut sa = Summary::from_slice(a);
        let sb = Summary::from_slice(b);
        sa.merge(&sb);
        let whole = Summary::from_slice(&xs);
        assert_eq!(sa.count(), whole.count());
        assert!((sa.mean() - whole.mean()).abs() < 1e-9);
        assert!((sa.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(sa.min(), whole.min());
        assert_eq!(sa.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        let before = s.mean();
        s.merge(&Summary::new());
        assert_eq!(s.mean(), before);
        assert_eq!(s.count(), 2);

        let mut e = Summary::new();
        e.merge(&Summary::from_slice(&[1.0, 2.0]));
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), 1.5);
    }

    #[test]
    fn cv_of_constant_data_is_zero() {
        let s = Summary::from_slice(&[3.0; 50]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_detects_high_variance() {
        // Mostly small values with one huge outlier — CV should exceed 1,
        // like the paper's hot-spot latency distributions.
        let mut xs = vec![1.0; 99];
        xs.push(200.0);
        let s = Summary::from_slice(&xs);
        assert!(s.cv() > 1.0, "cv = {}", s.cv());
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let base = 1e9;
        let xs: Vec<f64> = (0..100).map(|i| base + (i % 7) as f64).collect();
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 99.0;
        assert!((s.variance() - var).abs() / var < 1e-6);
    }
}

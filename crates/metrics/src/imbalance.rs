//! Per-server load accounting and the imbalance factor (paper Eq. 15).

use serde::{Deserialize, Serialize};

/// Tracks the cumulative load (bytes read, or any additive quantity) served
/// by each server in the cluster.
///
/// The paper's load-balancing metric is the *imbalance factor*
/// `η = (L_max − L_avg) / L_avg` — 0 for perfect balance, larger is worse
/// (Fig. 12 reports η = 0.18 for SP-Cache, 0.44 for EC-Cache and 1.18 for
/// selective replication).
///
/// # Examples
///
/// ```
/// use spcache_metrics::LoadTracker;
///
/// let mut lt = LoadTracker::new(4);
/// lt.add(0, 100.0);
/// lt.add(1, 100.0);
/// lt.add(2, 100.0);
/// lt.add(3, 100.0);
/// assert_eq!(lt.imbalance_factor(), 0.0);
/// lt.add(0, 400.0);
/// assert!(lt.imbalance_factor() > 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadTracker {
    loads: Vec<f64>,
}

impl LoadTracker {
    /// A tracker for `n` servers, all starting at zero load.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one server");
        LoadTracker {
            loads: vec![0.0; n],
        }
    }

    /// Adds `amount` of load to `server`.
    pub fn add(&mut self, server: usize, amount: f64) {
        debug_assert!(amount >= 0.0 && !amount.is_nan());
        self.loads[server] += amount;
    }

    /// Number of servers tracked.
    pub fn servers(&self) -> usize {
        self.loads.len()
    }

    /// The raw per-server loads.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Maximum per-server load.
    pub fn max(&self) -> f64 {
        self.loads.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    }

    /// Mean per-server load.
    pub fn mean(&self) -> f64 {
        self.loads.iter().sum::<f64>() / self.loads.len() as f64
    }

    /// Imbalance factor `η = (L_max − L_avg) / L_avg` (Eq. 15). Returns 0
    /// when the cluster has seen no load at all.
    pub fn imbalance_factor(&self) -> f64 {
        let avg = self.mean();
        if avg == 0.0 {
            0.0
        } else {
            (self.max() - avg) / avg
        }
    }

    /// Population variance of the per-server load — the quantity bounded by
    /// Theorem 1.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.loads.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / self.loads.len() as f64
    }

    /// Per-server loads sorted ascending, normalized by the mean — the
    /// x-axis of the paper's load-distribution CDFs (Figs. 12 and 18).
    pub fn normalized_sorted(&self) -> Vec<f64> {
        let mean = self.mean();
        let mut v: Vec<f64> = if mean == 0.0 {
            vec![0.0; self.loads.len()]
        } else {
            self.loads.iter().map(|l| l / mean).collect()
        };
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN loads"));
        v
    }

    /// Resets all loads to zero (start of a new measurement window).
    pub fn reset(&mut self) {
        self.loads.fill(0.0);
    }

    /// Merges loads from another tracker of the same size.
    ///
    /// # Panics
    ///
    /// Panics if server counts differ.
    pub fn merge(&mut self, other: &LoadTracker) {
        assert_eq!(self.loads.len(), other.loads.len(), "server count mismatch");
        for (a, b) in self.loads.iter_mut().zip(&other.loads) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_balanced_eta_zero() {
        let mut lt = LoadTracker::new(8);
        for s in 0..8 {
            lt.add(s, 42.0);
        }
        assert_eq!(lt.imbalance_factor(), 0.0);
        assert_eq!(lt.variance(), 0.0);
    }

    #[test]
    fn single_hot_server() {
        let mut lt = LoadTracker::new(4);
        lt.add(0, 100.0);
        // mean = 25, max = 100 → η = 3
        assert!((lt.imbalance_factor() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_is_neutral() {
        let lt = LoadTracker::new(3);
        assert_eq!(lt.imbalance_factor(), 0.0);
        assert_eq!(lt.normalized_sorted(), vec![0.0; 3]);
    }

    #[test]
    fn normalized_sorted_properties() {
        let mut lt = LoadTracker::new(4);
        lt.add(0, 10.0);
        lt.add(1, 20.0);
        lt.add(2, 30.0);
        lt.add(3, 40.0);
        let ns = lt.normalized_sorted();
        // Sorted ascending, mean of normalized loads is 1.
        assert!(ns.windows(2).all(|w| w[0] <= w[1]));
        let mean: f64 = ns.iter().sum::<f64>() / ns.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn variance_matches_direct() {
        let mut lt = LoadTracker::new(3);
        lt.add(0, 1.0);
        lt.add(1, 2.0);
        lt.add(2, 6.0);
        // mean 3, deviations -2,-1,3 → var = (4+1+9)/3
        assert!((lt.variance() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_and_merge() {
        let mut a = LoadTracker::new(2);
        a.add(0, 5.0);
        a.reset();
        assert_eq!(a.loads(), &[0.0, 0.0]);
        let mut b = LoadTracker::new(2);
        b.add(1, 7.0);
        a.merge(&b);
        assert_eq!(a.loads(), &[0.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "server count mismatch")]
    fn merge_rejects_size_mismatch() {
        let mut a = LoadTracker::new(2);
        let b = LoadTracker::new(3);
        a.merge(&b);
    }
}

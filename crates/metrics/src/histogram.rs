//! Logarithmically-bucketed histogram.

use serde::{Deserialize, Serialize};

/// A histogram with geometrically growing buckets, suited to latency data
/// spanning several orders of magnitude (ms → tens of seconds in Fig. 21).
///
/// Bucket `i` covers `[min * growth^i, min * growth^(i+1))`. Values below
/// `min` land in an underflow bucket, values beyond the last bucket in an
/// overflow bucket.
///
/// # Examples
///
/// ```
/// use spcache_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new(1e-3, 2.0, 20); // 1 ms .. ~1048 s
/// h.record(0.5);
/// h.record(0.5);
/// h.record(10.0);
/// assert_eq!(h.count(), 3);
/// let (val, frac) = h.quantile(0.5);
/// assert!(val > 0.2 && val < 1.0);
/// assert!(frac >= 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    min: f64,
    growth: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl LogHistogram {
    /// Creates a histogram with `n` buckets starting at `min`, each
    /// `growth`× wider than the last.
    ///
    /// # Panics
    ///
    /// Panics unless `min > 0`, `growth > 1` and `n > 0`.
    pub fn new(min: f64, growth: f64, n: usize) -> Self {
        assert!(min > 0.0, "min must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        assert!(n > 0, "need at least one bucket");
        LogHistogram {
            min,
            growth,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Index of the bucket containing `x`, or None for under/overflow.
    fn bucket_index(&self, x: f64) -> Option<usize> {
        if x < self.min {
            return None;
        }
        let idx = (x / self.min).ln() / self.growth.ln();
        let idx = idx as usize; // floor for non-negative values
        if idx < self.buckets.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Records one value.
    pub fn record(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.count += 1;
        if x < self.min {
            self.underflow += 1;
        } else {
            match self.bucket_index(x) {
                Some(i) => self.buckets[i] += 1,
                None => self.overflow += 1,
            }
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        self.min * self.growth.powi(i as i32)
    }

    /// `(bucket upper edge, cumulative fraction)` pairs — an empirical CDF.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut cum = self.underflow;
        out.push((self.min, cum as f64 / self.count as f64));
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            out.push((self.bucket_lo(i + 1), cum as f64 / self.count as f64));
        }
        out
    }

    /// Approximate `q`-quantile: returns `(bucket upper edge, cumulative
    /// fraction at that edge)` for the first bucket whose cumulative
    /// fraction reaches `q`.
    pub fn quantile(&self, q: f64) -> (f64, f64) {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return (0.0, 0.0);
        }
        let target = q * self.count as f64;
        let mut cum = self.underflow as f64;
        if cum >= target {
            return (self.min, cum / self.count as f64);
        }
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b as f64;
            if cum >= target {
                return (self.bucket_lo(i + 1), cum / self.count as f64);
            }
        }
        (f64::INFINITY, 1.0)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different `min`, `growth` or
    /// bucket counts.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.min, other.min, "histogram geometry mismatch");
        assert_eq!(self.growth, other.growth, "histogram geometry mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram geometry mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_expected_ranges() {
        let h = LogHistogram::new(1.0, 2.0, 4); // [1,2) [2,4) [4,8) [8,16)
        assert_eq!(h.bucket_index(1.0), Some(0));
        assert_eq!(h.bucket_index(1.9), Some(0));
        assert_eq!(h.bucket_index(2.0), Some(1));
        assert_eq!(h.bucket_index(7.9), Some(2));
        assert_eq!(h.bucket_index(8.0), Some(3));
        assert_eq!(h.bucket_index(16.0), None); // overflow
        assert_eq!(h.bucket_index(0.5), None); // underflow
    }

    #[test]
    fn under_and_overflow_counted() {
        let mut h = LogHistogram::new(1.0, 2.0, 2);
        h.record(0.1);
        h.record(100.0);
        h.record(1.5);
        assert_eq!(h.count(), 3);
        let cdf = h.cdf();
        // underflow fraction at the first edge.
        assert!((cdf[0].1 - 1.0 / 3.0).abs() < 1e-12);
        // all but overflow within the buckets.
        assert!((cdf.last().unwrap().1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_brackets_true_value() {
        let mut h = LogHistogram::new(0.001, 1.5, 40);
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let (v50, f50) = h.quantile(0.5);
        assert!(f50 >= 0.5);
        // True median is 5.0; bucket edge must be within one growth factor.
        assert!((5.0..=5.0 * 1.5).contains(&v50), "v50 = {v50}");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new(1.0, 2.0, 4);
        let mut b = LogHistogram::new(1.0, 2.0, 4);
        a.record(1.5);
        b.record(3.0);
        b.record(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = LogHistogram::new(1.0, 2.0, 4);
        let b = LogHistogram::new(1.0, 3.0, 4);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_quantile() {
        let h = LogHistogram::new(1.0, 2.0, 4);
        assert_eq!(h.quantile(0.5), (0.0, 0.0));
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let mut h = LogHistogram::new(0.01, 2.0, 16);
        for i in 0..500 {
            h.record(0.01 * 1.02f64.powi(i % 300));
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }
}

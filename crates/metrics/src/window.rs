//! Fixed-window time series statistics.
//!
//! The burst experiments watch latency *over time* — a popularity burst
//! degrades some windows, a rebalance restores them. [`WindowedStats`]
//! buckets timestamped samples into fixed-width windows and reports
//! per-window summaries.

use serde::{Deserialize, Serialize};

use crate::summary::Summary;

/// Samples bucketed into fixed-width time windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowedStats {
    width: f64,
    windows: Vec<Summary>,
}

impl WindowedStats {
    /// Creates a series with windows of `width` seconds starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics on non-positive width.
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0, "window width must be positive");
        WindowedStats {
            width,
            windows: Vec::new(),
        }
    }

    /// Window width in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Records a sample at time `t` (seconds, ≥ 0).
    ///
    /// # Panics
    ///
    /// Debug-panics on negative times.
    pub fn record(&mut self, t: f64, value: f64) {
        debug_assert!(t >= 0.0, "windowed stats start at t = 0");
        let idx = (t / self.width) as usize;
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, Summary::new);
        }
        self.windows[idx].record(value);
    }

    /// Number of windows (including empty interior ones).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The summary for window `i` (covering `[i·width, (i+1)·width)`).
    pub fn window(&self, i: usize) -> &Summary {
        &self.windows[i]
    }

    /// `(window start time, mean)` for every non-empty window.
    pub fn means(&self) -> Vec<(f64, f64)> {
        self.windows
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(|(i, s)| (i as f64 * self.width, s.mean()))
            .collect()
    }

    /// The worst (highest-mean) non-empty window.
    pub fn worst_window(&self) -> Option<(f64, f64)> {
        self.means()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN means"))
    }

    /// Mean over an inclusive window index range, pooling all samples.
    pub fn pooled_mean(&self, from: usize, to: usize) -> f64 {
        let mut total = Summary::new();
        for w in self.windows.iter().take(to + 1).skip(from) {
            total.merge(w);
        }
        total.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_right_window() {
        let mut w = WindowedStats::new(10.0);
        w.record(0.5, 1.0);
        w.record(9.99, 3.0);
        w.record(10.0, 100.0);
        w.record(25.0, 50.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.window(0).count(), 2);
        assert_eq!(w.window(0).mean(), 2.0);
        assert_eq!(w.window(1).mean(), 100.0);
        assert_eq!(w.window(2).mean(), 50.0);
    }

    #[test]
    fn means_skip_empty_windows() {
        let mut w = WindowedStats::new(1.0);
        w.record(0.0, 1.0);
        w.record(5.5, 2.0);
        let means = w.means();
        assert_eq!(means, vec![(0.0, 1.0), (5.0, 2.0)]);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn worst_window_finds_the_spike() {
        let mut w = WindowedStats::new(10.0);
        for t in 0..100 {
            let spike = if (30..40).contains(&t) { 50.0 } else { 1.0 };
            w.record(t as f64, spike);
        }
        let (start, mean) = w.worst_window().unwrap();
        assert_eq!(start, 30.0);
        assert_eq!(mean, 50.0);
    }

    #[test]
    fn pooled_mean_spans_windows() {
        let mut w = WindowedStats::new(1.0);
        w.record(0.5, 2.0);
        w.record(1.5, 4.0);
        w.record(2.5, 6.0);
        assert_eq!(w.pooled_mean(0, 2), 4.0);
        assert_eq!(w.pooled_mean(1, 1), 4.0);
    }

    #[test]
    fn empty_series() {
        let w = WindowedStats::new(5.0);
        assert!(w.is_empty());
        assert!(w.worst_window().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = WindowedStats::new(0.0);
    }
}
